/**
 * @file
 * Tests for the thermal transient integrator and thermally-driven
 * Turbo throttling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "power/thermal_transient.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }

} // namespace

TEST(ThermalTransient, StartsAtAmbient)
{
    ThermalTransient thermal(i7());
    EXPECT_DOUBLE_EQ(thermal.junctionC(), ThermalModel::ambientC);
}

TEST(ThermalTransient, ApproachesSteadyStateExponentially)
{
    ThermalTransient thermal(i7(), 10.0);
    const ThermalModel steady(i7());
    const double target = steady.junctionAt(80.0);

    // After one time constant: ~63% of the way.
    thermal.step(80.0, 10.0);
    const double expected = ThermalModel::ambientC +
        (target - ThermalModel::ambientC) * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(thermal.junctionC(), expected, 0.5);

    // After settle time: within 5%.
    ThermalTransient fresh(i7(), 10.0);
    fresh.step(80.0, fresh.settleTimeSec());
    EXPECT_NEAR(fresh.junctionC(), target,
                0.05 * (target - ThermalModel::ambientC) + 0.1);
}

TEST(ThermalTransient, ManySmallStepsMatchOneBigStep)
{
    ThermalTransient coarse(i7(), 8.0), fine(i7(), 8.0);
    coarse.step(60.0, 4.0);
    for (int i = 0; i < 400; ++i)
        fine.step(60.0, 0.01);
    EXPECT_NEAR(coarse.junctionC(), fine.junctionC(), 0.2);
}

TEST(ThermalTransient, CoolsBackDown)
{
    ThermalTransient thermal(i7(), 5.0);
    thermal.step(100.0, 60.0); // hot
    const double hot = thermal.junctionC();
    thermal.step(5.0, 60.0); // near idle
    EXPECT_LT(thermal.junctionC(), hot);
    thermal.reset();
    EXPECT_DOUBLE_EQ(thermal.junctionC(), ThermalModel::ambientC);
}

TEST(ThermalTransient, Validation)
{
    EXPECT_DEATH(ThermalTransient(i7(), 0.0), "time constant");
    ThermalTransient thermal(i7());
    EXPECT_DEATH(thermal.step(-1.0, 1.0), "negative");
    EXPECT_DEATH(thermal.step(1.0, -1.0), "negative");
}

TEST(ThermalThrottle, StaysBoostedWhenCool)
{
    const auto cfg = stockConfig(i7());
    ThermalThrottle throttle(cfg, 2);
    // A modest power level never threatens the throttle point.
    for (int i = 0; i < 100; ++i)
        throttle.step([](double) { return 40.0; }, 1.0);
    EXPECT_EQ(throttle.currentSteps(), 2);
}

TEST(ThermalThrottle, ShedsBoostOnSustainedHeat)
{
    const auto cfg = stockConfig(i7());
    ThermalThrottle throttle(cfg, 2, 5.0);
    // Power near TDP drives the junction to the throttle point.
    int minSteps = 2;
    for (int i = 0; i < 200; ++i) {
        throttle.step([](double) { return 136.0; }, 1.0);
        minSteps = std::min(minSteps, throttle.currentSteps());
    }
    EXPECT_LT(minSteps, 2);
}

TEST(ThermalThrottle, RearmsAfterCooling)
{
    const auto cfg = stockConfig(i7());
    ThermalThrottle throttle(cfg, 2, 5.0);
    for (int i = 0; i < 200; ++i)
        throttle.step([](double) { return 136.0; }, 1.0); // heat up
    const int throttled = throttle.currentSteps();
    for (int i = 0; i < 200; ++i)
        throttle.step([](double) { return 10.0; }, 1.0); // cool
    EXPECT_GT(throttle.currentSteps(), throttled);
    EXPECT_EQ(throttle.currentSteps(), 2);
}

TEST(ThermalThrottle, BoostedClockIsReported)
{
    const auto cfg = stockConfig(i7());
    ThermalThrottle throttle(cfg, 1);
    const double clock =
        throttle.step([](double) { return 40.0; }, 0.1);
    EXPECT_NEAR(clock, cfg.clockGhz + cfg.spec->turboStepGhz,
                1e-12);
}

TEST(ThermalThrottle, Validation)
{
    const auto c2d = stockConfig(processorById("C2D (65)"));
    EXPECT_DEATH(ThermalThrottle(c2d, 1), "no Turbo");
    const auto cfg = stockConfig(i7());
    EXPECT_DEATH(ThermalThrottle(cfg, -1), "negative");
}

} // namespace lhr
