/**
 * @file
 * Tests for the whole-system wall-power model.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "system/wall_power.hh"

namespace lhr
{

namespace
{

WallPowerModel
model()
{
    return WallPowerModel(processorById("i7 (45)"),
                          PlatformConfig::desktop2009());
}

} // namespace

TEST(WallPower, ComponentsAddUp)
{
    const auto wall = model().at(50.0, 5.0);
    EXPECT_DOUBLE_EQ(wall.chipW, 50.0);
    EXPECT_GT(wall.platformW, 0.0);
    EXPECT_GT(wall.psuLossW, 0.0);
    EXPECT_NEAR(wall.wallW, wall.chipW + wall.platformW + wall.psuLossW,
                1e-9);
    EXPECT_GT(wall.chipShare(), 0.2);
    EXPECT_LT(wall.chipShare(), 0.8);
}

TEST(WallPower, WallExceedsChip)
{
    for (double chip : {2.0, 20.0, 80.0}) {
        const auto wall = model().at(chip, 1.0);
        EXPECT_GT(wall.wallW, chip);
    }
}

TEST(WallPower, DramTrafficRaisesWallPower)
{
    const auto idle = model().at(40.0, 0.0);
    const auto busy = model().at(40.0, 15.0);
    EXPECT_GT(busy.wallW, idle.wallW);
}

TEST(WallPower, PsuEfficiencyCurve)
{
    const auto wallModel = model();
    // The curve peaks near 50% load and collapses at tiny loads.
    const double at10 = wallModel.psuEfficiency(45.0);
    const double at50 = wallModel.psuEfficiency(225.0);
    const double at100 = wallModel.psuEfficiency(450.0);
    EXPECT_LT(at10, at50);
    EXPECT_GT(at50, at100);
    EXPECT_GT(at10, 0.5);
    EXPECT_LE(at50, 0.9);
    EXPECT_DEATH(wallModel.psuEfficiency(-1.0), "negative");
}

TEST(WallPower, AtomSystemIsPlatformDominated)
{
    // The 2.4W Atom disappears inside its own platform: the paper's
    // point that whole-system measurement cannot see chip effects on
    // low-power parts.
    const WallPowerModel atomModel(processorById("Atom (45)"),
                                   PlatformConfig::desktop2009());
    const auto wall = atomModel.at(2.4, 1.0);
    EXPECT_LT(wall.chipShare(), 0.10);
}

TEST(WallPower, NameplateNeverApproached)
{
    // Fan et al.: real workloads stay far below nameplate.
    ExperimentRunner runner(0xFA4);
    for (const char *id : {"i7 (45)", "C2Q (65)"}) {
        const auto &spec = processorById(id);
        const WallPowerModel wallModel(spec,
                                       PlatformConfig::desktop2009());
        const auto profile = runner.profile(
            stockConfig(spec), benchmarkByName("fluidanimate"));
        const auto wall =
            wallModel.at(profile.power.total(), profile.dramGBs);
        EXPECT_LT(wall.wallW, 0.6 * wallModel.nameplateW()) << id;
    }
}

TEST(WallPower, Validation)
{
    EXPECT_DEATH(model().at(-1.0, 0.0), "negative");
    PlatformConfig bad = PlatformConfig::desktop2009();
    bad.psuNameplateW = 0.0;
    EXPECT_DEATH(WallPowerModel(processorById("i7 (45)"), bad),
                 "PSU");
}

} // namespace lhr
