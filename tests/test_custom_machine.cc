/**
 * @file
 * Tests for user-defined processor parsing.
 */

#include <gtest/gtest.h>

#include "cpu/perf_model.hh"
#include "harness/runner.hh"
#include "machine/custom.hh"

namespace lhr
{

namespace
{

const char *const pentiumM = R"(
# The machine the paper wished it could measure (section 2.5).
id          = PentiumM (130)
model       = Pentium M 735 (Banias class)
family      = Core
node_nm     = 130
cores       = 1
smt         = 1
llc_mb      = 1
clock_ghz   = 1.7
fmin_ghz    = 0.6
transistors_m = 77
die_mm2     = 83
tdp_w       = 24.5
dram        = DDR-400
veff_min    = 0.96
veff_max    = 1.48
uncore_base_w = 2.0
)";

} // namespace

TEST(CustomMachine, ParsesTheHeaderExample)
{
    const auto custom = CustomProcessor::parseString(pentiumM);
    const ProcessorSpec &spec = custom->spec();
    EXPECT_EQ(spec.id, "PentiumM (130)");
    EXPECT_EQ(spec.family, Family::Core);
    EXPECT_EQ(spec.tech().featureNm, 130);
    EXPECT_EQ(spec.cores, 1);
    EXPECT_DOUBLE_EQ(spec.llcMb, 1.0);
    EXPECT_DOUBLE_EQ(spec.stockClockGhz, 1.7);
    EXPECT_DOUBLE_EQ(spec.tdpW, 24.5);
    EXPECT_FALSE(spec.hasTurbo);
    EXPECT_DOUBLE_EQ(spec.perfCal, 1.0); // default
}

TEST(CustomMachine, WorksWithEveryModel)
{
    const auto custom = CustomProcessor::parseString(pentiumM);
    const auto cfg = stockConfig(custom->spec());
    EXPECT_EQ(cfg.contexts(), 1);

    // Performance model.
    const PerfModel perf(custom->spec());
    const auto &bench = benchmarkByName("gcc");
    const auto run = perf.evaluate(bench, cfg, cfg.clockGhz,
                                   bench.instructionsB() * 1e9, 1);
    EXPECT_GT(run.timeSec, 0.0);

    // Full harness.
    ExperimentRunner runner(0xCAFE2);
    const auto &m = runner.measure(cfg, bench);
    EXPECT_GT(m.powerW, 1.0);
    EXPECT_LT(m.powerW, custom->spec().tdpW);
}

TEST(CustomMachine, LowPowerLaptopPartSitsBetweenAtomAndDesktop)
{
    // The interesting historical question: the Pentium M's
    // efficiency presaged Core. Its power should land far below the
    // Pentium 4's and far above the Atom's.
    const auto custom = CustomProcessor::parseString(pentiumM);
    ExperimentRunner runner(0xCAFE3);
    const auto &bench = benchmarkByName("gcc");
    const double pm =
        runner.measure(stockConfig(custom->spec()), bench).powerW;
    const double p4 = runner.measure(
        stockConfig(processorById("Pentium4 (130)")), bench).powerW;
    const double atom = runner.measure(
        stockConfig(processorById("Atom (45)")), bench).powerW;
    EXPECT_LT(pm, 0.6 * p4);
    EXPECT_GT(pm, 2.0 * atom);
}

TEST(CustomMachine, DefaultsAreDerived)
{
    const auto custom = CustomProcessor::parseString(R"(
id = mini
family = Bonnell
node_nm = 45
cores = 1
smt = 2
llc_mb = 0.5
clock_ghz = 1.2
transistors_m = 40
die_mm2 = 25
tdp_w = 3
dram = DDR2-800
)");
    const ProcessorSpec &spec = custom->spec();
    EXPECT_DOUBLE_EQ(spec.fMinGhz, 1.2); // defaults to stock
    EXPECT_GT(spec.vEffMax, spec.vEffMin);
    EXPECT_GT(spec.uncoreBaseW, 0.0);
    EXPECT_EQ(spec.model, "mini");
}

TEST(CustomMachine, RejectsBadDefinitions)
{
    EXPECT_DEATH(CustomProcessor::parseString("id = x\nfamily = Z80\n"),
                 "unknown family");
    EXPECT_DEATH(CustomProcessor::parseString("id only, no equals\n"),
                 "key = value");
    EXPECT_DEATH(CustomProcessor::parseString("id = x\n"),
                 "missing required");
    EXPECT_DEATH(CustomProcessor::parseString(R"(
id = x
family = Core
node_nm = 90
cores = 1
smt = 1
llc_mb = 1
clock_ghz = 1
transistors_m = 10
die_mm2 = 10
tdp_w = 10
dram = DDR-400
)"),
                 "no model for 90");
    EXPECT_DEATH(CustomProcessor::parseString(R"(
id = x
family = Core
node_nm = 65
cores = banana
smt = 1
llc_mb = 1
clock_ghz = 1
transistors_m = 10
die_mm2 = 10
tdp_w = 10
dram = DDR-400
)"),
                 "bad number");
}

} // namespace lhr
