/**
 * @file
 * Golden bit-identity tests for the trace substrate.
 *
 * The O(log n) LRU stack, the flat-array cache/TLB simulators, and
 * batched micro-op generation are pure representation changes: the
 * streams and decisions they produce must match the original
 * vector/rotate implementation bit for bit. These constants were
 * captured from that original implementation (3 benchmarks x 2
 * seeds, spanning shallow, mid, and deep reuse); any drift in the
 * address stream, the hit/miss sequence, or the pipeline result is
 * a correctness bug, not a tolerance issue — hence exact equality
 * on hashes and hexfloat doubles.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "pipesim/pipeline.hh"
#include "trace/generator.hh"
#include "workload/benchmark.hh"

namespace lhr
{

namespace
{

/** Byte-wise FNV-1a over a 64-bit value. */
uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

constexpr uint64_t fnvInit = 0xcbf29ce484222325ull;
constexpr uint64_t traceLength = 200000;

struct Golden
{
    const char *bench;
    uint64_t seed;
    uint64_t addrHash;       ///< FNV-1a over the raw address stream
    uint64_t seqHash;        ///< FNV-1a over (hit level, TLB hit)
    uint64_t l1Misses;
    uint64_t lastLevelMisses;
    uint64_t tlbMisses;
    uint64_t tlbAccesses;
    double cycles;           ///< PipelineSim cycles, exact
    double memStallShare;
    double branchStallShare;
};

// Captured from the pre-optimization implementation at 200k
// micro-ops on i7 (45) structural levels.
constexpr Golden goldens[] = {
    {"gcc", 7, 0xc2ddde3d75309c10ull, 0x3f8d02e3092b2546ull,
     5879, 3382, 53, 70336,
     0x1.e214650d7993p+17, 0x1.05e9ec3659861p-2,
     0x1.95daa998bc5c3p-8},
    {"gcc", 99, 0x70907043d6b3f6eeull, 0x0c2b472aced2ba62ull,
     5919, 3465, 55, 70190,
     0x1.e834b5e50dc8p+17, 0x1.06d90a7d6c888p-2,
     0x1.915b8d7220c9ep-8},
    {"mcf", 7, 0x4782e756fdb4f56eull, 0xd5385321c756ae82ull,
     13137, 8333, 131, 80110,
     0x1.1e86bd79436c6p+19, 0x1.29e883d1198b4p-2,
     0x1.1d3e00310ee81p-7},
    {"mcf", 99, 0xf99624e7fa4c4bd7ull, 0x45658fc54d8d4c2dull,
     13353, 8395, 132, 80138,
     0x1.1e3f8d79436dp+19, 0x1.27c030b67d40bp-2,
     0x1.13701186e4e37p-7},
    {"hmmer", 7, 0xa07693b5f711e56eull, 0x0a99c12ee48889c5ull,
     968, 882, 14, 70336,
     0x1.ca5fa86bcb33p+16, 0x1.0248cec5f342dp-2,
     0x1.2c1d6c0316891p-9},
    {"hmmer", 99, 0x935814041bccee21ull, 0xf6cfefd95740bf46ull,
     1049, 948, 15, 70190,
     0x1.cf9e5af288208p+16, 0x1.037b1fe5bc659p-2,
     0x1.0f24a5a4a3509p-9},
};

class GoldenTrace : public ::testing::TestWithParam<Golden>
{
};

} // namespace

TEST_P(GoldenTrace, AddressStreamBitIdentical)
{
    const Golden &g = GetParam();
    const auto &bench = benchmarkByName(g.bench);
    AddressGenerator gen(bench.miss, bench.memAccessPerInstr,
                         g.seed ^ 0xADD2);
    uint64_t hash = fnvInit;
    for (uint64_t i = 0; i < traceLength; ++i)
        hash = fnv1a(hash, gen.next());
    EXPECT_EQ(hash, g.addrHash);
}

TEST_P(GoldenTrace, HitMissSequenceBitIdentical)
{
    const Golden &g = GetParam();
    const auto &bench = benchmarkByName(g.bench);
    const auto levels = structuralLevels(processorById("i7 (45)"));

    TraceGenerator trace(bench, g.seed);
    HierarchySim caches(levels);
    TlbArray tlb(512);
    uint64_t hash = fnvInit;
    for (uint64_t i = 0; i < traceLength; ++i) {
        const MicroOp op = trace.next();
        if (op.kind == MicroOp::Kind::Load ||
            op.kind == MicroOp::Kind::Store) {
            const int lvl = caches.accessHitLevel(op.addr);
            const bool tlbHit = tlb.access(op.addr);
            hash = fnv1a(hash,
                         static_cast<uint64_t>(lvl + 2) * 2 +
                             (tlbHit ? 1 : 0));
        }
    }
    EXPECT_EQ(hash, g.seqHash);
    EXPECT_EQ(caches.level(0).misses(), g.l1Misses);
    EXPECT_EQ(caches.level(caches.levelCount() - 1).misses(),
              g.lastLevelMisses);
    EXPECT_EQ(tlb.misses(), g.tlbMisses);
    EXPECT_EQ(tlb.accesses(), g.tlbAccesses);
}

TEST_P(GoldenTrace, PipelineResultBitIdentical)
{
    const Golden &g = GetParam();
    const auto &bench = benchmarkByName(g.bench);
    const auto &i7 = processorById("i7 (45)");
    PipelineSim pipe(PipelineConfig::of(i7, i7.stockClockGhz),
                     structuralLevels(i7));
    const auto r = pipe.run(bench, traceLength, g.seed);
    EXPECT_EQ(r.cycles, g.cycles);
    EXPECT_EQ(r.memStallShare, g.memStallShare);
    EXPECT_EQ(r.branchStallShare, g.branchStallShare);
}

TEST(GoldenTrace, FillMatchesNext)
{
    // Batched generation must replay the exact next() stream.
    const auto &bench = benchmarkByName("mcf");
    TraceGenerator a(bench, 7);
    TraceGenerator b(bench, 7);
    MicroOpBatch batch;
    const size_t chunk = 1000;
    for (int round = 0; round < 5; ++round) {
        a.fill(batch, chunk);
        for (size_t i = 0; i < chunk; ++i) {
            const MicroOp op = b.next();
            EXPECT_EQ(batch.kindAt(i), op.kind);
            EXPECT_EQ(batch.addr[i], op.addr);
            EXPECT_EQ(batch.pc[i], op.pc);
            EXPECT_EQ(batch.taken[i] != 0, op.taken);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Substrate, GoldenTrace, ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(info.param.bench) + "_seed" +
            std::to_string(info.param.seed);
    });

} // namespace lhr
