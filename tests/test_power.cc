/**
 * @file
 * Tests for the chip power model, thermal coupling, and activity
 * factors.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "harness/runner.hh"
#include "power/chip_power.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }

std::vector<double>
activeCores(const MachineConfig &cfg, double act)
{
    return std::vector<double>(cfg.enabledCores, act);
}

} // namespace

TEST(Activity, BoundsAndMonotonicity)
{
    EXPECT_GE(switchingActivity(0.0, 0.0), 0.2);
    EXPECT_LE(switchingActivity(1.0, 1.0), 1.0);
    EXPECT_LT(switchingActivity(0.2, 0.0),
              switchingActivity(0.8, 0.0));
    EXPECT_LT(switchingActivity(0.5, 0.0),
              switchingActivity(0.5, 0.7));
    EXPECT_DEATH(switchingActivity(-0.1, 0.0), "utilization");
    EXPECT_DEATH(switchingActivity(1.1, 0.0), "utilization");
}

TEST(Thermal, JunctionScalesWithPower)
{
    const ThermalModel thermal(i7());
    EXPECT_NEAR(thermal.junctionAt(0.0), ThermalModel::ambientC, 1e-12);
    EXPECT_GT(thermal.junctionAt(100.0), thermal.junctionAt(50.0));
    // At TDP, junction should approach the throttle temperature.
    EXPECT_NEAR(thermal.junctionAt(i7().tdpW),
                ThermalModel::throttleJunctionC, 1e-9);
}

TEST(Thermal, LeakageTempFactor)
{
    EXPECT_NEAR(ThermalModel::leakageTempFactor(60.0), 1.0, 1e-12);
    EXPECT_GT(ThermalModel::leakageTempFactor(90.0), 1.0);
    EXPECT_LT(ThermalModel::leakageTempFactor(40.0), 1.0);
    EXPECT_GE(ThermalModel::leakageTempFactor(-100.0), 0.5);
}

TEST(Power, BreakdownComponentsPositive)
{
    const ChipPowerModel model(i7());
    const auto cfg = stockConfig(i7());
    const auto pb = model.compute(cfg, 2.667, activeCores(cfg, 0.6),
                                  0.3, 5.0);
    EXPECT_GT(pb.coreDynW, 0.0);
    EXPECT_GT(pb.leakW, 0.0);
    EXPECT_GT(pb.llcW, 0.0);
    EXPECT_GT(pb.uncoreW, 0.0);
    EXPECT_NEAR(pb.total(),
                pb.coreDynW + pb.leakW + pb.llcW + pb.uncoreW, 1e-9);
    EXPECT_GT(pb.junctionC, ThermalModel::ambientC);
}

TEST(Power, MoreActivityMorePower)
{
    const ChipPowerModel model(i7());
    const auto cfg = stockConfig(i7());
    const double low =
        model.compute(cfg, 2.667, activeCores(cfg, 0.3), 0.1, 1.0)
            .total();
    const double high =
        model.compute(cfg, 2.667, activeCores(cfg, 0.9), 0.8, 10.0)
            .total();
    EXPECT_GT(high, low);
}

TEST(Power, HigherClockMorePower)
{
    const ChipPowerModel model(i7());
    const auto cfg = stockConfig(i7());
    const double slow =
        model.compute(cfg, 1.6, activeCores(cfg, 0.6), 0.3, 5.0)
            .total();
    const double fast =
        model.compute(cfg, 2.667, activeCores(cfg, 0.6), 0.3, 5.0)
            .total();
    // Voltage scales with frequency, so power grows super-linearly.
    EXPECT_GT(fast / slow, 2.667 / 1.6);
}

TEST(Power, IdleCoresCheaperThanActive)
{
    const ChipPowerModel model(i7());
    auto cfg = withTurbo(withCores(stockConfig(i7()), 2), false);
    const double bothActive =
        model.compute(cfg, 2.667, {0.6, 0.6}, 0.3, 5.0).total();
    const double oneIdle =
        model.compute(cfg, 2.667, {0.6, 0.0}, 0.3, 5.0).total();
    EXPECT_LT(oneIdle, bothActive);
    // ...but an enabled idle core is not free (clock gating is
    // imperfect).
    const auto single = withCores(cfg, 1);
    const double singleCore =
        model.compute(single, 2.667, {0.6}, 0.3, 5.0).total();
    EXPECT_LT(singleCore, oneIdle);
}

TEST(Power, DisabledCoresAreGated)
{
    const ChipPowerModel model(i7());
    const auto four = withTurbo(stockConfig(i7()), false);
    const auto one = withCores(four, 1);
    const double fourCores =
        model.compute(four, 2.667, {0.6, 0.0, 0.0, 0.0}, 0.3, 5.0)
            .total();
    const double oneCore =
        model.compute(one, 2.667, {0.6}, 0.3, 5.0).total();
    EXPECT_LT(oneCore, fourCores);
}

TEST(Power, ValidationPanics)
{
    const ChipPowerModel model(i7());
    const auto cfg = stockConfig(i7());
    EXPECT_DEATH(model.compute(cfg, 2.667, {0.5}, 0.3, 5.0),
                 "size mismatch");
    EXPECT_DEATH(
        model.compute(cfg, 2.667, activeCores(cfg, 0.5), 1.5, 5.0),
        "llc activity");
    EXPECT_DEATH(
        model.compute(cfg, 2.667, {0.5, 0.5, 0.5, 1.5}, 0.3, 5.0),
        "core activity");
    const auto wrong = stockConfig(processorById("Atom (45)"));
    EXPECT_DEATH(model.compute(wrong, 1.667, {0.5}, 0.3, 1.0),
                 "different processor");
}

TEST(Power, DieShrinkReducesCorePower)
{
    // Same microarchitecture family at a smaller node and lower
    // voltage must switch cheaper per core (paper Finding 4).
    const ChipPowerModel old65(processorById("C2D (65)"));
    const ChipPowerModel new45(processorById("C2D (45)"));
    const auto cfg65 = stockConfig(processorById("C2D (65)"));
    auto cfg45 = stockConfig(processorById("C2D (45)"));
    cfg45.clockGhz = 2.4; // matched clocks
    const double p65 =
        old65.compute(cfg65, 2.4, {0.6, 0.6}, 0.3, 3.0).coreDynW;
    const double p45 =
        new45.compute(cfg45, 2.4, {0.6, 0.6}, 0.3, 3.0).coreDynW;
    EXPECT_LT(p45, 0.75 * p65);
}

/** Property sweep: power stays within physical bounds everywhere. */
class PowerSweep : public ::testing::TestWithParam<const ProcessorSpec *>
{
};

TEST_P(PowerSweep, NeverExceedsTdpAtStock)
{
    // The paper's Figure 2: true chip power is strictly below TDP
    // for every benchmark in the stock configuration.
    const ProcessorSpec &spec = *GetParam();
    ExperimentRunner runner(31337);
    const auto cfg = stockConfig(spec);
    for (const auto &bench : allBenchmarks()) {
        const auto profile = runner.profile(cfg, bench);
        ASSERT_LT(profile.power.total(), spec.tdpW)
            << spec.id << " running " << bench.name;
    }
}

TEST_P(PowerSweep, MinimumFloorIsPositive)
{
    const ProcessorSpec &spec = *GetParam();
    const ChipPowerModel model(spec);
    auto cfg = stockConfig(spec);
    cfg.turboEnabled = false;
    cfg.clockGhz = spec.fMinGhz;
    const double idle = model.compute(
        cfg, spec.fMinGhz,
        std::vector<double>(cfg.enabledCores, 0.0), 0.0, 0.0).total();
    EXPECT_GT(idle, 0.3) << spec.id;
    EXPECT_LT(idle, spec.tdpW) << spec.id;
}

INSTANTIATE_TEST_SUITE_P(
    AllProcessors, PowerSweep,
    ::testing::ValuesIn([] {
        std::vector<const ProcessorSpec *> all;
        for (const auto &spec : allProcessors())
            all.push_back(&spec);
        return all;
    }()),
    [](const ::testing::TestParamInfo<const ProcessorSpec *> &info) {
        std::string name = info.param->id;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace lhr
