/**
 * @file
 * Tests for the OS governor and hot-unplug models (paper
 * section 2.8).
 */

#include <gtest/gtest.h>

#include "os/governor.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }

} // namespace

TEST(Governor, PolicyNames)
{
    EXPECT_EQ(governorPolicyName(GovernorPolicy::Performance),
              "performance");
    EXPECT_EQ(governorPolicyName(GovernorPolicy::Ondemand),
              "ondemand");
}

TEST(Governor, LadderSpansTheClockRange)
{
    const CpuFreqGovernor governor(i7(), GovernorPolicy::Ondemand, 6);
    const auto &ladder = governor.ladder();
    ASSERT_EQ(ladder.size(), 6u);
    EXPECT_NEAR(ladder.front(), i7().fMinGhz, 1e-12);
    EXPECT_NEAR(ladder.back(), i7().stockClockGhz, 1e-12);
    for (size_t i = 1; i < ladder.size(); ++i)
        EXPECT_GT(ladder[i], ladder[i - 1]);
    EXPECT_DEATH(CpuFreqGovernor(i7(), GovernorPolicy::Ondemand, 1),
                 "P-states");
}

TEST(Governor, PerformancePinsMax)
{
    CpuFreqGovernor governor(i7(), GovernorPolicy::Performance);
    for (double util : {0.0, 0.5, 1.0})
        EXPECT_NEAR(governor.step(util), i7().stockClockGhz, 1e-12);
}

TEST(Governor, PowersavePinsMin)
{
    CpuFreqGovernor governor(i7(), GovernorPolicy::Powersave);
    for (double util : {0.0, 0.5, 1.0})
        EXPECT_NEAR(governor.step(util), i7().fMinGhz, 1e-12);
}

TEST(Governor, OndemandJumpsToMaxOnLoad)
{
    CpuFreqGovernor governor(i7(), GovernorPolicy::Ondemand);
    EXPECT_NEAR(governor.step(0.95), i7().stockClockGhz, 1e-12);
}

TEST(Governor, OndemandDecaysWhenIdle)
{
    CpuFreqGovernor governor(i7(), GovernorPolicy::Ondemand);
    governor.step(0.95); // to max
    double prev = governor.clockGhz();
    for (int i = 0; i < 20; ++i) {
        const double f = governor.step(0.05);
        EXPECT_LE(f, prev + 1e-12);
        prev = f;
    }
    EXPECT_NEAR(prev, i7().fMinGhz, 1e-12);
}

TEST(Governor, OndemandHoldsUnderModerateLoad)
{
    // A load that would exceed the threshold at the next lower
    // state keeps the current state.
    CpuFreqGovernor governor(i7(), GovernorPolicy::Ondemand);
    governor.step(0.95);
    const double before = governor.clockGhz();
    governor.step(0.70); // at max; would be ~0.78 one step down
    EXPECT_NEAR(governor.clockGhz(), before, 1e-12);
}

TEST(Governor, UserspaceObeysAndClamps)
{
    CpuFreqGovernor governor(i7(), GovernorPolicy::Userspace);
    governor.setUserspaceGhz(2.0);
    EXPECT_NEAR(governor.step(0.9), 2.0, 1e-12);
    governor.setUserspaceGhz(99.0);
    EXPECT_NEAR(governor.clockGhz(), i7().stockClockGhz, 1e-12);
    CpuFreqGovernor ondemand(i7(), GovernorPolicy::Ondemand);
    EXPECT_DEATH(ondemand.setUserspaceGhz(2.0), "userspace");
}

TEST(Governor, UtilizationValidated)
{
    CpuFreqGovernor governor(i7(), GovernorPolicy::Ondemand);
    EXPECT_DEATH(governor.step(-0.1), "utilization");
    EXPECT_DEATH(governor.step(1.1), "utilization");
}

TEST(HotUnplug, BuggyKernelSpinsHotter)
{
    const MicroArch &ua = i7().uarch();
    EXPECT_GT(OsContextScaling::offlinedCoreActivity(ua, true),
              OsContextScaling::offlinedCoreActivity(ua, false));
}

TEST(HotUnplug, Bug5471IncreasesPower)
{
    // The paper's observation: with the buggy kernel, taking cores
    // away through the OS costs MORE power than the BIOS baseline.
    for (const char *id : {"i7 (45)", "C2Q (65)"}) {
        const auto &spec = processorById(id);
        const double buggy = OsContextScaling::osVsBiosPowerRatio(
            spec, spec.cores - 1, true);
        EXPECT_GT(buggy, 1.05) << id;
    }
}

TEST(HotUnplug, FixedKernelIsNearBios)
{
    const double fixedRatio =
        OsContextScaling::osVsBiosPowerRatio(i7(), 3, false);
    const double buggyRatio =
        OsContextScaling::osVsBiosPowerRatio(i7(), 3, true);
    EXPECT_LT(fixedRatio, buggyRatio);
    // Even a healthy kernel cannot match BIOS gating exactly: the
    // parked cores keep their caches coherent and leak.
    EXPECT_LT(fixedRatio, 1.40);
}

TEST(HotUnplug, Validation)
{
    EXPECT_DEATH(OsContextScaling::osVsBiosPowerRatio(i7(), 4, true),
                 "offline");
    EXPECT_DEATH(OsContextScaling::osVsBiosPowerRatio(i7(), -1, true),
                 "offline");
}

} // namespace lhr
