/**
 * @file
 * Randomized robustness sweep: the laboratory must stay physical for
 * arbitrary legal configurations and benchmarks, not just the 45
 * curated ones. Configurations are drawn uniformly from each
 * processor's legal knob space.
 */

#include <gtest/gtest.h>

#include "core/lab.hh"
#include "util/rng.hh"

namespace lhr
{

namespace
{

MachineConfig
randomConfig(Rng &rng)
{
    const auto &specs = allProcessors();
    const ProcessorSpec &spec = specs[rng.below(specs.size())];
    MachineConfig cfg = stockConfig(spec);
    cfg.enabledCores = 1 + static_cast<int>(rng.below(spec.cores));
    cfg.smtPerCore =
        spec.smtWays > 1 && rng.uniform() < 0.5 ? 2 : 1;
    cfg.clockGhz = spec.fMinGhz +
        rng.uniform() * (spec.stockClockGhz - spec.fMinGhz);
    cfg.turboEnabled = spec.hasTurbo && rng.uniform() < 0.5;
    return cfg;
}

const Benchmark &
randomBenchmark(Rng &rng)
{
    const auto &all = allBenchmarks();
    return all[rng.below(all.size())];
}

} // namespace

class FuzzSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSweep, RandomExperimentsStayPhysical)
{
    Rng rng(GetParam());
    ExperimentRunner runner(GetParam() ^ 0xF022);
    for (int trial = 0; trial < 12; ++trial) {
        const MachineConfig cfg = randomConfig(rng);
        const Benchmark &bench = randomBenchmark(rng);

        const auto profile = runner.profile(cfg, bench);
        ASSERT_GT(profile.timeSec, 0.0) << cfg.label() << " "
                                        << bench.name;
        ASSERT_GT(profile.power.total(), 0.3) << cfg.label();
        ASSERT_LT(profile.power.total(), cfg.spec->tdpW)
            << cfg.label() << " " << bench.name;
        ASSERT_GE(profile.grantedClockGhz, cfg.clockGhz - 1e-9);
        for (double act : profile.coreActivity) {
            ASSERT_GE(act, 0.0);
            ASSERT_LE(act, 1.0);
        }

        const auto &m = runner.measure(cfg, bench);
        ASSERT_NEAR(m.powerW, profile.power.total(),
                    0.10 * profile.power.total())
            << cfg.label() << " " << bench.name;
        ASSERT_LT(m.timeCi95Rel, 0.12);
        ASSERT_LT(m.powerCi95Rel, 0.25);
    }
}

TEST_P(FuzzSweep, FewerCoresOrClockNeverFaster)
{
    // Monotonicity: removing cores or clock can never speed a
    // benchmark up. (SMT is deliberately excluded: disabling it CAN
    // help — the paper's own Finding W2, Java on the Pentium 4.)
    Rng rng(GetParam() ^ 0x5EED);
    ExperimentRunner runner(GetParam() ^ 0x5EED);
    for (int trial = 0; trial < 6; ++trial) {
        const auto &specs = allProcessors();
        const ProcessorSpec &spec = specs[rng.below(specs.size())];
        const Benchmark &bench = randomBenchmark(rng);

        auto full = stockConfig(spec);
        if (spec.hasTurbo)
            full = withTurbo(full, false);
        const double tFull = runner.profile(full, bench).timeSec;

        auto reduced = full;
        reduced.enabledCores =
            1 + static_cast<int>(rng.below(spec.cores));
        reduced.clockGhz = spec.fMinGhz +
            0.5 * rng.uniform() * (spec.stockClockGhz - spec.fMinGhz);
        const double tReduced = runner.profile(reduced, bench).timeSec;

        ASSERT_GE(tReduced, tFull * (1.0 - 1e-9))
            << spec.id << " " << bench.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(101ull, 202ull, 303ull,
                                           404ull, 505ull, 606ull,
                                           707ull, 808ull));

} // namespace lhr
