/**
 * @file
 * Tests for the structural cache/TLB simulators.
 */

#include <gtest/gtest.h>

#include "cachesim/cache_sim.hh"
#include "util/rng.hh"

namespace lhr
{

TEST(CacheArray, GeometryValidation)
{
    EXPECT_DEATH(CacheArray(0.0, 8), "geometry");
    EXPECT_DEATH(CacheArray(32.0, 0), "geometry");
    EXPECT_DEATH(CacheArray(32.0, 8, 63), "geometry");
    const CacheArray cache(32.0, 8);
    EXPECT_EQ(cache.associativity(), 8);
    EXPECT_EQ(cache.sets(), 64);
}

TEST(CacheArray, NonPowerOfTwoCapacityRoundsSetsDown)
{
    // 48KB / 8 ways / 64B lines = 96 sets, rounded down to the
    // nearest power of two (64) so set indexing stays a mask.
    const CacheArray cache(48.0, 8);
    EXPECT_EQ(cache.sets(), 64u);
    EXPECT_EQ(cache.associativity(), 8u);

    // 3KB / 2 ways / 64B = 24 sets -> 16.
    const CacheArray odd(3.0, 2);
    EXPECT_EQ(odd.sets(), 16u);

    // Degenerate: capacity below one line per way still yields one
    // set rather than zero.
    const CacheArray tiny(0.0625, 2); // 64B, 2 ways
    EXPECT_EQ(tiny.sets(), 1u);
}

TEST(CacheArray, ColdMissThenHit)
{
    CacheArray cache(32.0, 8);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1004)); // same line
    EXPECT_FALSE(cache.access(0x2000));
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.5);
}

TEST(CacheArray, LruEvictsOldest)
{
    // Direct-ish: 2-way, lines mapping to the same set.
    CacheArray cache(1.0, 2, 64); // 1KB, 2-way: 8 sets
    const uint64_t setStride = 8 * 64; // same set every 512B
    cache.access(0 * setStride);
    cache.access(1 * setStride);
    cache.access(2 * setStride);     // evicts line 0
    EXPECT_FALSE(cache.access(0 * setStride)); // miss: was evicted
    EXPECT_TRUE(cache.access(2 * setStride));  // still resident
}

TEST(CacheArray, LruPromotionOnHit)
{
    CacheArray cache(1.0, 2, 64);
    const uint64_t s = 8 * 64;
    cache.access(0 * s);
    cache.access(1 * s);
    cache.access(0 * s); // promote 0 to MRU
    cache.access(2 * s); // must evict 1, not 0
    EXPECT_TRUE(cache.access(0 * s));
    EXPECT_FALSE(cache.access(1 * s));
}

TEST(CacheArray, FitsWorkingSetPerfectly)
{
    CacheArray cache(32.0, 8);
    // 256 lines = 16KB, fits in 32KB: after one pass, all hits.
    for (int round = 0; round < 3; ++round)
        for (uint64_t line = 0; line < 256; ++line)
            cache.access(line * 64);
    EXPECT_EQ(cache.misses(), 256u);
}

TEST(CacheArray, ThrashesWhenOversubscribed)
{
    CacheArray cache(32.0, 8);
    // Sequential sweep over 4x the capacity: pure LRU thrashing,
    // every access misses.
    for (int round = 0; round < 3; ++round)
        for (uint64_t line = 0; line < 4 * 512; ++line)
            cache.access(line * 64);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 1.0);
}

TEST(CacheArray, ResetClearsEverything)
{
    CacheArray cache(32.0, 8);
    cache.access(0x1000);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.access(0x1000)); // cold again
}

TEST(Tlb, HitAndMissAccounting)
{
    TlbArray tlb(4);
    EXPECT_FALSE(tlb.access(0x0000));
    EXPECT_TRUE(tlb.access(0x0FFF));  // same 4KB page
    EXPECT_FALSE(tlb.access(0x1000)); // next page
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruCapacity)
{
    TlbArray tlb(2);
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x2000); // evicts page 0
    EXPECT_FALSE(tlb.access(0x0000));
    EXPECT_TRUE(tlb.access(0x2000));
}

TEST(Tlb, DisplacementEvicts)
{
    TlbArray tlb(8);
    for (uint64_t page = 0; page < 8; ++page)
        tlb.access(page * 4096);
    tlb.displace(1.0);
    // Everything gone.
    EXPECT_FALSE(tlb.access(0x0000));
    EXPECT_DEATH(tlb.displace(1.5), "fraction");
}

TEST(Tlb, DisplaceZeroIsNoOp)
{
    TlbArray tlb(8);
    for (uint64_t page = 0; page < 8; ++page)
        tlb.access(page * 4096);
    tlb.displace(0.0);
    for (uint64_t page = 0; page < 8; ++page)
        EXPECT_TRUE(tlb.access(page * 4096)) << "page " << page;
}

TEST(Tlb, DisplaceFullThenRefill)
{
    TlbArray tlb(4);
    for (uint64_t page = 0; page < 4; ++page)
        tlb.access(page * 4096);
    tlb.displace(1.0);
    // The whole TLB is invalid: every page is a compulsory miss
    // again, and the freed slots must absorb all of them.
    for (uint64_t page = 0; page < 4; ++page)
        EXPECT_FALSE(tlb.access(page * 4096)) << "page " << page;
    for (uint64_t page = 0; page < 4; ++page)
        EXPECT_TRUE(tlb.access(page * 4096)) << "page " << page;
}

TEST(Tlb, DisplaceOnEmptyIsSafe)
{
    TlbArray tlb(4);
    tlb.displace(0.0);
    tlb.displace(1.0);
    EXPECT_FALSE(tlb.access(0x0000));
}

TEST(Tlb, PartialDisplacementKeepsMru)
{
    TlbArray tlb(8);
    for (uint64_t page = 0; page < 8; ++page)
        tlb.access(page * 4096);
    tlb.displace(0.5); // keeps the 4 most recent pages
    EXPECT_TRUE(tlb.access(7 * 4096));
    EXPECT_FALSE(tlb.access(0 * 4096));
}

TEST(HierarchySim, InclusiveFiltering)
{
    HierarchySim sim({{1.0, 2}, {64.0, 8}});
    // Sweep 2KB (32 lines): thrashes 1KB L1, fits in L2.
    for (int round = 0; round < 4; ++round)
        for (uint64_t line = 0; line < 32; ++line)
            sim.access(line * 64);
    EXPECT_GT(sim.level(0).misses(), sim.level(1).misses());
    EXPECT_EQ(sim.level(1).misses(), 32u); // only compulsory
    EXPECT_GT(sim.mpki(0, 128), sim.mpki(1, 128));
    EXPECT_DEATH(sim.mpki(0, 0), "zero");
    EXPECT_DEATH(HierarchySim({}), "at least one");
}

TEST(HierarchySim, L2OnlySeesL1Misses)
{
    HierarchySim sim({{32.0, 8}, {256.0, 8}});
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        sim.access(rng.below(1u << 20));
    EXPECT_LE(sim.level(1).accesses(), sim.level(0).misses());
}

} // namespace lhr
