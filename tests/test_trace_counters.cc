/**
 * @file
 * Tests for the synthetic trace generator and the hardware-counter
 * characterization pipeline — including the cross-validation of the
 * structural substrate against the analytic miss curves.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "cachesim/cache_sim.hh"
#include "counters/hwcounters.hh"
#include "trace/generator.hh"

namespace lhr
{

TEST(AddressGenerator, ReproducesMissCurveAt32K)
{
    // Run a generated stream through an actual 32KB array: the miss
    // rate must match the curve's reference point.
    const MissCurve curve{20.0, 0.5, 1e6, 1.0};
    const double mapi = 0.35;
    AddressGenerator gen(curve, mapi, 99);
    CacheArray l1(32.0, 8);
    const int accesses = 400000;
    for (int i = 0; i < accesses; ++i)
        l1.access(gen.next());
    // Simulated MPKI at 32KB (converting accesses to instructions).
    const double mpki = l1.missRatio() * mapi * 1000.0;
    EXPECT_NEAR(mpki, curve.missPerKi(32.0),
                0.35 * curve.missPerKi(32.0));
}

TEST(AddressGenerator, ColdFloorForStreaming)
{
    // A streaming curve keeps missing even in a huge cache.
    const MissCurve streaming{30.0, 0.15, 1e6, 20.0};
    AddressGenerator gen(streaming, 0.33, 7);
    CacheArray big(16384.0, 16);
    for (int i = 0; i < 200000; ++i)
        big.access(gen.next());
    const double mpki = big.missRatio() * 0.33 * 1000.0;
    EXPECT_GT(mpki, 0.5 * streaming.coldMpki);
}

TEST(AddressGenerator, DeterministicStreams)
{
    const MissCurve curve{20.0, 0.5, 1e6, 1.0};
    AddressGenerator a(curve, 0.35, 5), b(curve, 0.35, 5);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(AddressGenerator, ValidationPanics)
{
    const MissCurve curve{20.0, 0.5, 1e6, 1.0};
    EXPECT_DEATH(AddressGenerator(curve, 0.0, 1), "access rate");
}

TEST(LruStack, MatchesReferenceVectorModel)
{
    // The order-statistic stack must behave exactly like the naive
    // move-to-front vector it replaced, across depths that exercise
    // the ring, the arena, spills, and the size bound. The bound
    // sits well above the 4096-entry ring so the stack is forced
    // through spill, arena rank-select, rebuild, and arena-eviction
    // paths — a bound below the ring leaves all of those untested.
    constexpr size_t bound = 10000;
    constexpr size_t ringCapacity = 4096; // LruStack::frontCapacity
    LruStack stack(bound);
    std::vector<uint64_t> reference;
    Rng rng(42);
    uint64_t fresh = 0;
    int deepTouches = 0;
    for (int i = 0; i < 150000; ++i) {
        // Pareto-ish skew toward shallow depths, with a heavy tail
        // that regularly crosses the ring/arena boundary.
        const size_t span = 1ull << rng.below(16);
        const size_t depth = 1 + rng.below(span);
        if (depth <= reference.size()) {
            if (depth > ringCapacity)
                ++deepTouches;
            const uint64_t expect = reference[depth - 1];
            reference.erase(reference.begin() + (depth - 1));
            reference.insert(reference.begin(), expect);
            ASSERT_EQ(stack.touch(depth), expect) << "step " << i;
        } else {
            reference.insert(reference.begin(), ++fresh);
            if (reference.size() > bound)
                reference.pop_back();
            stack.pushFront(fresh);
        }
        ASSERT_EQ(stack.size(), reference.size()) << "step " << i;
    }
    // The distribution must have actually driven the arena: depths
    // beyond the ring capacity guarantee touchDeep/select ran.
    EXPECT_GT(deepTouches, 1000);
    // And the size bound must have engaged, so arena-side eviction
    // (pushFrontSlow's select of the deepest block) ran too.
    EXPECT_EQ(stack.size(), bound);
}

TEST(LruStack, BoundEvictsDeepest)
{
    LruStack stack(4);
    for (uint64_t b = 1; b <= 5; ++b)
        stack.pushFront(b);
    EXPECT_EQ(stack.size(), 4u);
    EXPECT_EQ(stack.touch(4), 2u); // 1 fell off the back
}

TEST(TraceGenerator, OpMixMatchesDescriptor)
{
    const auto &bench = benchmarkByName("gcc");
    TraceGenerator trace(bench, 11);
    int mem = 0, branches = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const MicroOp op = trace.next();
        if (op.kind == MicroOp::Kind::Load ||
            op.kind == MicroOp::Kind::Store)
            ++mem;
        else if (op.kind == MicroOp::Kind::Branch)
            ++branches;
    }
    EXPECT_NEAR(static_cast<double>(mem) / n, bench.memAccessPerInstr,
                0.01);
    EXPECT_NEAR(static_cast<double>(branches) / n,
                TraceGenerator::branchPerInstr, 0.01);
}

TEST(TraceGenerator, BranchPoolBiasesAreSane)
{
    const auto &bench = benchmarkByName("gobmk"); // branchy
    TraceGenerator trace(bench, 12);
    EXPECT_EQ(trace.branches().size(),
              static_cast<size_t>(TraceGenerator::staticBranches));
    for (const auto &branch : trace.branches()) {
        EXPECT_GE(branch.takenBias, 0.0);
        EXPECT_LE(branch.takenBias, 1.0);
    }
}

TEST(Counters, BankArithmetic)
{
    CounterBank bank;
    EXPECT_EQ(bank.read(HwEvent::Instructions), 0u);
    bank.add(HwEvent::Instructions, 1000);
    bank.add(HwEvent::LlcMisses, 5);
    EXPECT_DOUBLE_EQ(bank.perKi(HwEvent::LlcMisses), 5.0);
    bank.reset();
    EXPECT_EQ(bank.read(HwEvent::LlcMisses), 0u);
    EXPECT_DEATH(bank.perKi(HwEvent::LlcMisses), "no instructions");
}

TEST(Counters, EventNames)
{
    EXPECT_STREQ(hwEventName(HwEvent::DtlbMisses), "dTLB-misses");
    EXPECT_STREQ(hwEventName(HwEvent::Instructions), "instructions");
}

TEST(Characterize, CountsAreInternallyConsistent)
{
    const auto &bench = benchmarkByName("xalancbmk");
    const auto profile = characterizeWorkload(
        bench, processorById("i7 (45)"), 150000, 21, 0.0, 50000);
    const auto &c = profile.counters;
    EXPECT_EQ(c.read(HwEvent::Instructions), 150000u);
    EXPECT_LE(c.read(HwEvent::L1dMisses),
              c.read(HwEvent::MemAccesses));
    EXPECT_LE(c.read(HwEvent::LlcMisses),
              c.read(HwEvent::L1dMisses));
    EXPECT_LE(c.read(HwEvent::BranchMispredicts),
              c.read(HwEvent::BranchInstructions));
    EXPECT_LE(c.read(HwEvent::DtlbMisses),
              c.read(HwEvent::DtlbAccesses));
    EXPECT_DEATH(characterizeWorkload(bench, processorById("i7 (45)"),
                                      0, 1),
                 "zero instructions");
}

TEST(Characterize, GcDisplacementRaisesDtlbMisses)
{
    // The db/DTLB mechanism (paper section 3.1): a co-located
    // collector displaces application TLB state.
    const auto &db = benchmarkByName("db");
    const auto same = characterizeWorkload(
        db, processorById("i7 (45)"), 400000, 7, 0.7);
    const auto offloaded = characterizeWorkload(
        db, processorById("i7 (45)"), 400000, 7, 0.0);
    EXPECT_GT(same.dtlbMpki, 1.3 * offloaded.dtlbMpki);
}

/** Cross-validation: structural L1 MPKI matches the analytic curve. */
class CrossValidationSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CrossValidationSweep, L1MpkiMatchesAnalyticCurve)
{
    const auto &bench = benchmarkByName(GetParam());
    const auto &spec = processorById("i7 (45)");
    const auto profile =
        characterizeWorkload(bench, spec, 250000, 33, 0.0, 120000);
    const auto analytic =
        makeHierarchy(spec).evaluate(bench.miss, 1.0, 1.0);
    // Within 40% or 2 MPKI, whichever is looser (set conflicts and
    // finite-trace effects vs the fully-associative analytic form).
    const double tolerance =
        std::max(2.0, 0.4 * analytic.l1Mpki);
    EXPECT_NEAR(profile.l1Mpki, analytic.l1Mpki, tolerance);
}

TEST_P(CrossValidationSweep, BranchRateTracksDescriptor)
{
    const auto &bench = benchmarkByName(GetParam());
    const auto profile = characterizeWorkload(
        bench, processorById("i7 (45)"), 250000, 34, 0.0, 50000);
    const double tolerance =
        std::max(2.5, 0.5 * bench.branchMispKi);
    EXPECT_NEAR(profile.branchMispKi, bench.branchMispKi, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Representative, CrossValidationSweep,
    ::testing::Values("hmmer", "gcc", "mcf", "libquantum", "povray",
                      "db", "xalan", "canneal", "fluidanimate"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // namespace lhr
