/**
 * @file
 * Tests for the EDP/ED^2P efficiency metric extension.
 */

#include <gtest/gtest.h>

#include "analysis/energy_metrics.hh"
#include "core/lab.hh"

namespace lhr
{

TEST(EnergyMetrics, Names)
{
    EXPECT_EQ(efficiencyMetricName(EfficiencyMetric::Energy),
              "energy");
    EXPECT_EQ(efficiencyMetricName(EfficiencyMetric::Edp), "EDP");
    EXPECT_EQ(efficiencyMetricName(EfficiencyMetric::Ed2p), "ED^2P");
}

TEST(EnergyMetrics, Values)
{
    EXPECT_DOUBLE_EQ(
        efficiencyValue(EfficiencyMetric::Energy, 2.0, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(
        efficiencyValue(EfficiencyMetric::Edp, 2.0, 0.5), 0.25);
    EXPECT_DOUBLE_EQ(
        efficiencyValue(EfficiencyMetric::Ed2p, 2.0, 0.5), 0.125);
    EXPECT_DEATH(efficiencyValue(EfficiencyMetric::Edp, 0.0, 0.5),
                 "non-positive");
}

TEST(EnergyMetrics, MetricsWeighPerformanceProgressively)
{
    // A fast, hungry point and a slow, frugal point: energy prefers
    // the frugal one, ED^2P the fast one.
    const double fastV =
        efficiencyValue(EfficiencyMetric::Energy, 4.0, 0.5);
    const double slowV =
        efficiencyValue(EfficiencyMetric::Energy, 0.5, 0.2);
    EXPECT_GT(fastV, slowV); // frugal wins on energy

    const double fastV2 =
        efficiencyValue(EfficiencyMetric::Ed2p, 4.0, 0.5);
    const double slowV2 =
        efficiencyValue(EfficiencyMetric::Ed2p, 0.5, 0.2);
    EXPECT_LT(fastV2, slowV2); // fast wins on ED^2P
}

TEST(EnergyMetrics, RankingIsSortedAndComplete)
{
    Lab lab(0x1234);
    const auto ranked = rankConfigurations45nm(
        lab.runner(), lab.reference(), EfficiencyMetric::Edp,
        std::nullopt);
    EXPECT_EQ(ranked.size(), 29u);
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_LE(ranked[i - 1].value, ranked[i].value);
}

TEST(EnergyMetrics, MetricChoiceChangesTheWinner)
{
    Lab lab(0x1234);
    const auto byEnergy = rankConfigurations45nm(
        lab.runner(), lab.reference(), EfficiencyMetric::Energy,
        std::nullopt);
    const auto byEd2p = rankConfigurations45nm(
        lab.runner(), lab.reference(), EfficiencyMetric::Ed2p,
        std::nullopt);
    EXPECT_NE(byEnergy.front().label, byEd2p.front().label);
    // ED^2P's winner is faster than energy's winner.
    EXPECT_GT(byEd2p.front().perf, byEnergy.front().perf);
}

} // namespace lhr
