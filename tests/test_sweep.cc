/**
 * @file
 * Tests for the work-stealing thread pool, the concurrency-safe
 * experiment runner, and the parallel sweep engine's determinism
 * contract: a parallel sweep must produce bit-identical Measurements
 * to a serial run, whatever the thread count or interleaving. The
 * hammer tests here also run under the ThreadSanitizer CI job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lab.hh"
#include "sweep/sweep.hh"
#include "util/thread_pool.hh"

namespace lhr
{

namespace
{

/** Bitwise equality, field by field (no tolerance). */
bool
identical(const Measurement &a, const Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations;
}

/** A small but representative grid: 3 configs x 10 benchmarks. */
std::vector<MachineConfig>
testConfigs()
{
    return {
        stockConfig(processorById("Atom (45)")),
        stockConfig(processorById("i7 (45)")),
        withSmt(stockConfig(processorById("i5 (32)")), false),
    };
}

std::vector<Benchmark>
testBenchmarks()
{
    const auto &all = allBenchmarks();
    // First ten spans native and Java workloads.
    return {all.begin(), all.begin() + 10};
}

} // namespace

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&counter] {
            counter.fetch_add(1, std::memory_order_relaxed);
        });
    pool.wait();
    EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ParallelForCoversTheRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&hits](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), (batch + 1) * 50);
    }
}

TEST(ThreadPool, ZeroMeansDefaultThreadCount)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1);
    EXPECT_EQ(pool.threadCount(), ThreadPool::defaultThreadCount());
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitWithoutLosingSiblings)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 200; ++i) {
        pool.submit([&completed, i] {
            if (i == 97)
                throw FaultError(Status::error(
                    StatusCode::Internal, "task 97 exploded"));
            completed.fetch_add(1, std::memory_order_relaxed);
        });
    }
    try {
        pool.wait();
        FAIL() << "wait() swallowed the task's exception";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::Internal);
        EXPECT_NE(std::string(e.what()).find("task 97"),
                  std::string::npos);
    }
    // Every sibling still ran; no worker died, no task was lost.
    EXPECT_EQ(completed.load(), 199);

    // The pool is reusable after the rethrow.
    pool.submit([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 200);
}

TEST(ThreadPool, ParallelForRethrowsToo)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error(
                                              "iteration 13");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, CancelIsCooperativeAndResettable)
{
    ThreadPool pool(2);
    EXPECT_FALSE(pool.cancelled());
    pool.cancel();
    EXPECT_TRUE(pool.cancelled());
    std::atomic<int> skipped{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&] {
            if (pool.cancelled())
                ++skipped;
        });
    pool.wait();
    EXPECT_EQ(skipped.load(), 10);
    pool.resetCancel();
    EXPECT_FALSE(pool.cancelled());
}

TEST(Sweep, PoisonedConfigDegradesToOneFlaggedRow)
{
    // The acceptance scenario of the fault rig: the paper's full 45
    // configurations with one dead rig. The sweep completes, flags
    // exactly the poisoned rows, and every other cell measures.
    const auto configs = standardConfigurations();
    ASSERT_EQ(configs.size(), 45u);
    const std::vector<Benchmark> benchmarks = {
        benchmarkByName("mcf")};

    ExperimentRunner runner(0xBEEF);
    FaultPlan plan;
    plan.poisonedConfig = configs[7].label();
    runner.setFaultPlan(plan);

    SweepEngine engine(runner, {.threads = 4});
    const SweepReport report = engine.run(configs, benchmarks);

    ASSERT_EQ(report.cells.size(), 45u);
    size_t flagged = 0;
    for (const SweepCell &cell : report.cells) {
        if (cell.config->label() == plan.poisonedConfig) {
            ++flagged;
            EXPECT_FALSE(cell.ok());
            EXPECT_EQ(cell.measurement, nullptr);
            EXPECT_EQ(cell.status.code(), StatusCode::FaultDetected);
        } else {
            EXPECT_TRUE(cell.ok()) << cell.config->label();
            ASSERT_NE(cell.measurement, nullptr);
            EXPECT_GT(cell.measurement->timeSec, 0.0);
        }
    }
    // Several of the 45 configurations are derated variants of the
    // same label; the poisoned label appears exactly once here.
    EXPECT_EQ(flagged, 1u);
    EXPECT_EQ(report.failedCells(), 1u);
    EXPECT_NE(report.summary().find("1 failed"), std::string::npos);

    // The persistable store holds only the 44 healthy rows.
    const ResultStore store = toStore(report);
    EXPECT_EQ(store.size(), 44u);
    EXPECT_EQ(store.find(plan.poisonedConfig, "mcf"), nullptr);

    // Healthy rows are bit-identical to a plan-free serial runner: a
    // poison-only plan perturbs nothing else.
    ExperimentRunner clean(0xBEEF);
    for (const SweepCell &cell : report.cells) {
        if (cell.ok())
            EXPECT_TRUE(identical(
                *cell.measurement,
                clean.measure(*cell.config, *cell.benchmark)));
    }
}

TEST(Sweep, FailureCapCancelsTheRemainder)
{
    // Poison the very first configuration and allow zero failures:
    // the sweep must cancel cooperatively, marking cells it skipped
    // as Cancelled rather than running them.
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    ExperimentRunner runner(0xBEEF);
    FaultPlan plan;
    plan.poisonedConfig = configs[0].label();
    runner.setFaultPlan(plan);

    SweepEngine engine(runner, {.threads = 1, .maxFailures = 0});
    const SweepReport report = engine.run(configs, benchmarks);

    ASSERT_EQ(report.cells.size(),
              configs.size() * benchmarks.size());
    size_t faulted = 0, cancelled = 0, measured = 0;
    for (const SweepCell &cell : report.cells) {
        if (cell.status.code() == StatusCode::FaultDetected)
            ++faulted;
        else if (cell.status.code() == StatusCode::Cancelled)
            ++cancelled;
        else if (cell.ok())
            ++measured;
    }
    EXPECT_GE(faulted, 1u);
    EXPECT_GE(cancelled, 1u);
    EXPECT_EQ(faulted + cancelled + measured, report.cells.size());
    EXPECT_EQ(report.failedCells(), faulted + cancelled);
}

TEST(Sweep, ParallelIsBitIdenticalToSerial)
{
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();

    ExperimentRunner serialRunner(0xBEEF);
    std::vector<const Measurement *> serial;
    for (const auto &cfg : configs)
        for (const auto &bench : benchmarks)
            serial.push_back(&serialRunner.measure(cfg, bench));

    ExperimentRunner parallelRunner(0xBEEF);
    SweepEngine engine(parallelRunner, {.threads = 4});
    const SweepReport report = engine.run(configs, benchmarks);

    ASSERT_EQ(report.cells.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(identical(*serial[i], *report.cells[i].measurement))
            << report.cells[i].config->label() << " / "
            << report.cells[i].benchmark->name;
    }
}

TEST(Sweep, CellsComeBackInRowMajorOrder)
{
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    ExperimentRunner runner(0xBEEF);
    SweepEngine engine(runner, {.threads = 4});
    const SweepReport report = engine.run(configs, benchmarks);

    ASSERT_EQ(report.cells.size(),
              configs.size() * benchmarks.size());
    // Cells point into the report's own grid copies, in row-major
    // order: configs outer, benchmarks inner.
    ASSERT_EQ(report.configs.size(), configs.size());
    ASSERT_EQ(report.benchmarks.size(), benchmarks.size());
    for (size_t ci = 0; ci < configs.size(); ++ci) {
        for (size_t bi = 0; bi < benchmarks.size(); ++bi) {
            const SweepCell &cell =
                report.cells[ci * benchmarks.size() + bi];
            EXPECT_EQ(cell.config, &report.configs[ci]);
            EXPECT_EQ(cell.config->label(), configs[ci].label());
            EXPECT_EQ(cell.benchmark, &report.benchmarks[bi]);
            EXPECT_EQ(cell.benchmark->name, benchmarks[bi].name);
            ASSERT_NE(cell.measurement, nullptr);
            EXPECT_GE(cell.wallSec, 0.0);
        }
    }
}

TEST(Sweep, ReportCountsCacheTraffic)
{
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    ExperimentRunner runner(0xBEEF);
    SweepEngine engine(runner, {.threads = 2});

    const SweepReport cold = engine.run(configs, benchmarks);
    EXPECT_EQ(cold.cache.misses, cold.cells.size());
    EXPECT_EQ(cold.cache.hits, 0u);
    EXPECT_GT(cold.wallSec, 0.0);
    EXPECT_GT(cold.experimentsPerSec(), 0.0);

    const SweepReport warm = engine.run(configs, benchmarks);
    EXPECT_EQ(warm.cache.hits, warm.cells.size());
    EXPECT_EQ(warm.cache.misses, 0u);
    // Cached measurements are the same objects.
    for (size_t i = 0; i < cold.cells.size(); ++i)
        EXPECT_EQ(cold.cells[i].measurement,
                  warm.cells[i].measurement);

    EXPECT_EQ(runner.cachedMeasurements(), cold.cells.size());
}

TEST(Sweep, ReportOwnsItsGrid)
{
    // The grid vectors passed in are temporaries; the report must
    // survive them, because its cells point into its own copies.
    Lab lab(0xBEEF);
    const SweepReport report =
        lab.sweep(testConfigs(), testBenchmarks(), {.threads = 2});
    ASSERT_FALSE(report.cells.empty());
    const auto expect = testConfigs();
    for (size_t i = 0; i < report.cells.size(); ++i) {
        const SweepCell &cell = report.cells[i];
        EXPECT_EQ(cell.config->label(),
                  expect[i / report.benchmarks.size()].label());
        EXPECT_GT(cell.measurement->timeSec, 0.0);
    }
}

TEST(Sweep, ToStoreKeepsEveryCell)
{
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    ExperimentRunner runner(0xBEEF);
    SweepEngine engine(runner, {.threads = 2});
    const SweepReport report = engine.run(configs, benchmarks);

    const ResultStore store = toStore(report);
    EXPECT_EQ(store.size(), report.cells.size());
    const StoredResult *found =
        store.find(configs[0].label(), benchmarks[0].name);
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec,
                     report.cells[0].measurement->timeSec);

    // The parallel snapshot agrees with the serial snapshot API.
    ExperimentRunner serialRunner(0xBEEF);
    const ResultStore serialStore =
        ResultStore::snapshot(serialRunner, {configs[0]});
    for (const auto *row : serialStore.all()) {
        const StoredResult *other =
            store.find(row->configLabel, row->benchmark);
        if (other)
            EXPECT_DOUBLE_EQ(other->timeSec, row->timeSec);
    }
}

TEST(Sweep, SameKeyHammerReturnsOneObject)
{
    // Many threads demand the same experiment at once: exactly one
    // measurement must run, everyone gets the same address, and the
    // bits match an independent serial runner. This is the test the
    // TSan job leans on to race-check the sharded memo cache.
    ExperimentRunner runner(0xBEEF);
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &bench = benchmarkByName("xalan");

    constexpr int threadCount = 8;
    std::vector<const Measurement *> seen(threadCount, nullptr);
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < threadCount; ++t)
            threads.emplace_back([&, t] {
                seen[t] = &runner.measure(cfg, bench);
            });
        for (auto &thread : threads)
            thread.join();
    }
    for (int t = 1; t < threadCount; ++t)
        EXPECT_EQ(seen[t], seen[0]);

    const CacheStats stats = runner.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<uint64_t>(threadCount - 1));

    ExperimentRunner fresh(0xBEEF);
    EXPECT_TRUE(identical(fresh.measure(cfg, bench), *seen[0]));
}

TEST(Sweep, MixedKeyHammerStaysDeterministic)
{
    // Threads hammer overlapping keys (every thread walks the whole
    // small grid) while the runner lazily builds models and rigs.
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    ExperimentRunner runner(0x5EED);

    constexpr int threadCount = 6;
    std::vector<std::thread> threads;
    for (int t = 0; t < threadCount; ++t)
        threads.emplace_back([&] {
            for (const auto &cfg : configs)
                for (const auto &bench : benchmarks)
                    runner.measure(cfg, bench);
        });
    for (auto &thread : threads)
        thread.join();

    const size_t grid = configs.size() * benchmarks.size();
    EXPECT_EQ(runner.cachedMeasurements(), grid);
    const CacheStats stats = runner.cacheStats();
    EXPECT_EQ(stats.misses, grid);
    EXPECT_EQ(stats.lookups(), grid * threadCount);

    ExperimentRunner serial(0x5EED);
    for (const auto &cfg : configs)
        for (const auto &bench : benchmarks)
            EXPECT_TRUE(identical(serial.measure(cfg, bench),
                                  runner.measure(cfg, bench)));
}

namespace
{

/** save() into a string for byte-identity assertions. */
std::string
savedText(const ResultStore &store)
{
    std::ostringstream os;
    const Status saved = store.save(os);
    EXPECT_TRUE(saved.ok()) << saved.toString();
    return os.str();
}

} // namespace

TEST(Sweep, ShardPartitionCoversTheGridExactlyOnce)
{
    // The --shard i/N contract: the row-major cell list is split
    // deterministically, every cell lands in exactly one shard, and
    // each shard's cells stay in ascending row-major order.
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    const int shards = 4;
    const size_t total = configs.size() * benchmarks.size();

    std::vector<int> owner(total, 0);
    for (int s = 0; s < shards; ++s) {
        ExperimentRunner runner(0xBEEF);
        SweepEngine engine(runner, {.threads = 2,
                                    .shardIndex = s,
                                    .shardCount = shards});
        const SweepReport report = engine.run(configs, benchmarks);
        EXPECT_EQ(report.shardIndex, s);
        EXPECT_EQ(report.shardCount, shards);
        // Near-equal split: the strided partition differs by at
        // most one cell between shards.
        EXPECT_GE(report.cells.size(), total / shards);
        EXPECT_LE(report.cells.size(), total / shards + 1);

        for (const SweepCell &cell : report.cells) {
            ASSERT_NE(cell.config, nullptr);
            ASSERT_NE(cell.benchmark, nullptr);
            // Recover the global row-major index from the grid.
            size_t ci = 0, bi = 0;
            for (size_t k = 0; k < report.configs.size(); ++k)
                if (cell.config == &report.configs[k])
                    ci = k;
            for (size_t k = 0; k < report.benchmarks.size(); ++k)
                if (cell.benchmark == &report.benchmarks[k])
                    bi = k;
            const size_t idx = ci * benchmarks.size() + bi;
            EXPECT_EQ(idx % shards, static_cast<size_t>(s));
            ++owner[idx];
        }
    }
    for (size_t idx = 0; idx < total; ++idx)
        EXPECT_EQ(owner[idx], 1) << "cell " << idx;
}

TEST(Sweep, ShardMergeIsByteIdenticalToSingleProcess)
{
    // The acceptance contract of the sharded sweep: N independent
    // shard processes (modeled here as independent runners with the
    // same seed) produce partial stores that merge into a store
    // byte-identical to a single-process sweep of the whole grid.
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();

    ExperimentRunner whole(0xBEEF);
    SweepEngine engine(whole, {.threads = 4});
    const std::string single =
        savedText(toStore(engine.run(configs, benchmarks)));

    ResultStore merged;
    for (int s = 0; s < 3; ++s) {
        ExperimentRunner runner(0xBEEF); // fresh process, same seed
        SweepEngine shardEngine(runner, {.threads = 2,
                                         .shardIndex = s,
                                         .shardCount = 3});
        const ResultStore part =
            toStore(shardEngine.run(configs, benchmarks));
        const Status ok = merged.merge(part);
        ASSERT_TRUE(ok.ok()) << ok.toString();
    }
    EXPECT_EQ(savedText(merged), single);
}

TEST(Sweep, ShardOutsideContractDies)
{
    ExperimentRunner runner(0xBEEF);
    SweepEngine engine(runner, {.shardIndex = 3, .shardCount = 3});
    EXPECT_DEATH(engine.run(testConfigs(), testBenchmarks()),
                 "shard");
}

TEST(Sweep, WarmStartResumesWithoutRemeasuring)
{
    // Checkpoint/resume: a sweep warm-started from a complete prior
    // store re-measures nothing — zero cache misses, every lookup a
    // hit — and still round-trips to the identical snapshot bytes.
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();

    ExperimentRunner first(0xBEEF);
    SweepEngine firstEngine(first, {.threads = 4});
    const ResultStore prior =
        toStore(firstEngine.run(configs, benchmarks));

    ExperimentRunner resumed(0xBEEF);
    SweepEngine engine(resumed, {.threads = 4, .warmStart = &prior});
    const SweepReport report = engine.run(configs, benchmarks);

    EXPECT_EQ(report.seededCells, report.cells.size());
    EXPECT_EQ(report.cache.misses, 0u);
    EXPECT_EQ(report.cache.hits, report.cells.size());
    EXPECT_NE(report.summary().find("resumed from store"),
              std::string::npos);
    // The resumed store is byte-identical: %.6f text parsed back and
    // re-printed reproduces itself.
    EXPECT_EQ(savedText(toStore(report)), savedText(prior));
}

TEST(Sweep, PartialWarmStartMeasuresOnlyTheMissingCells)
{
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();

    ExperimentRunner first(0xBEEF);
    SweepEngine firstEngine(first, {.threads = 4});
    ResultStore prior = toStore(firstEngine.run(configs, benchmarks));

    // Simulate an interrupted sweep: the last checkpoint is missing
    // a handful of rows.
    const std::vector<std::string> missing = {
        benchmarks[1].name, benchmarks[4].name, benchmarks[7].name};
    ResultStore partial;
    for (const auto *r : prior.all()) {
        if (std::find(missing.begin(), missing.end(), r->benchmark) ==
            missing.end())
            partial.put(*r);
    }
    const size_t holes = prior.size() - partial.size();
    ASSERT_EQ(holes, configs.size() * missing.size());

    ExperimentRunner resumed(0xBEEF);
    SweepEngine engine(resumed, {.threads = 4,
                                 .warmStart = &partial});
    const SweepReport report = engine.run(configs, benchmarks);

    EXPECT_EQ(report.seededCells, partial.size());
    EXPECT_EQ(report.cache.misses, holes);
    EXPECT_EQ(report.cache.hits, partial.size());
    // Re-measured holes carry full-precision bits, so compare via
    // the persisted rounding: the final snapshot matches the
    // original complete one byte for byte.
    EXPECT_EQ(savedText(toStore(report)), savedText(prior));
}

TEST(Sweep, WarmStartAppliesOnlyToThisShardsCells)
{
    // A full-grid prior store seeds only the cells this shard owns:
    // the other shards' rows must not inflate this shard's report
    // or its store.
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();

    ExperimentRunner first(0xBEEF);
    SweepEngine firstEngine(first, {.threads = 4});
    const ResultStore prior =
        toStore(firstEngine.run(configs, benchmarks));

    ExperimentRunner resumed(0xBEEF);
    SweepEngine engine(resumed, {.threads = 2,
                                 .shardIndex = 1,
                                 .shardCount = 3,
                                 .warmStart = &prior});
    const SweepReport report = engine.run(configs, benchmarks);
    EXPECT_EQ(report.seededCells, report.cells.size());
    EXPECT_EQ(report.cache.misses, 0u);
    EXPECT_EQ(toStore(report).size(), report.cells.size());
}

TEST(Sweep, CheckpointPersistsMidRunAndResumes)
{
    const auto configs = testConfigs();
    const auto benchmarks = testBenchmarks();
    const std::string path =
        testing::TempDir() + "sweep_checkpoint.csv";
    std::remove(path.c_str());

    // One thread makes the checkpoint cadence deterministic: saves
    // land at exactly 5, 10, ..., 25 completed cells (the final
    // partial interval is the caller's save), so the file holds
    // exactly 25 of the 30 rows.
    ExperimentRunner runner(0xBEEF);
    SweepEngine engine(runner, {.threads = 1,
                                .checkpointEvery = 5,
                                .checkpointPath = path});
    const SweepReport report = engine.run(configs, benchmarks);
    ASSERT_EQ(report.cells.size(), 30u);

    const Expected<ResultStore> checkpoint =
        ResultStore::tryLoadFile(path);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().toString();
    EXPECT_EQ(checkpoint.value().size(), 25u);
    // Every checkpoint row matches the final results through the
    // persisted rounding (checkpoint rows went through %.6f text;
    // the report still holds full-precision doubles).
    const ResultStore full = toStore(report);
    ResultStore fullSubset;
    for (const auto *r : checkpoint.value().all()) {
        const StoredResult *other =
            full.find(r->configLabel, r->benchmark);
        ASSERT_NE(other, nullptr)
            << r->configLabel << " / " << r->benchmark;
        fullSubset.put(*other);
    }
    EXPECT_EQ(savedText(checkpoint.value()), savedText(fullSubset));

    // Resume from the checkpoint: seeded cells equal its rows, and
    // the final store matches the uninterrupted sweep byte for byte.
    ExperimentRunner resumed(0xBEEF);
    SweepEngine resumeEngine(resumed,
                             {.threads = 2,
                              .warmStart = &checkpoint.value()});
    const SweepReport resumedReport =
        resumeEngine.run(configs, benchmarks);
    EXPECT_EQ(resumedReport.seededCells, checkpoint.value().size());
    EXPECT_EQ(resumedReport.cache.misses,
              resumedReport.cells.size() - checkpoint.value().size());
    EXPECT_EQ(savedText(toStore(resumedReport)), savedText(full));
    std::remove(path.c_str());
}

TEST(Sweep, StopFlagCancelsUnstartedCellsAndKeepsCompletedRows)
{
    // A stop flag that is already set when the sweep starts must
    // cancel every cell without running any experiment — this is
    // the boundary snapshot's SIGINT handler relies on.
    ExperimentRunner runner(0xBEEF);
    std::atomic<bool> stop{true};
    SweepOptions options;
    options.threads = 2;
    options.stopFlag = &stop;
    SweepEngine engine(runner, options);
    const SweepReport report = engine.run(testConfigs(),
                                          testBenchmarks());
    ASSERT_EQ(report.cells.size(), 30u);
    for (const SweepCell &cell : report.cells) {
        EXPECT_FALSE(cell.ok());
        EXPECT_EQ(cell.status.code(), StatusCode::Cancelled);
    }
    EXPECT_EQ(runner.cacheStats().lookups(), 0u);
    EXPECT_EQ(toStore(report).size(), 0u);

    // Cleared flag: the identical sweep runs to completion, and its
    // rows are bit-identical to an unflagged engine's (the stop
    // plumbing must not perturb determinism).
    stop.store(false);
    const SweepReport resumed = engine.run(testConfigs(),
                                           testBenchmarks());
    EXPECT_EQ(resumed.failedCells(), 0u);
    ExperimentRunner plainRunner(0xBEEF);
    SweepEngine plain(plainRunner, SweepOptions{.threads = 2});
    const SweepReport reference = plain.run(testConfigs(),
                                            testBenchmarks());
    ASSERT_EQ(resumed.cells.size(), reference.cells.size());
    for (size_t i = 0; i < resumed.cells.size(); ++i) {
        ASSERT_TRUE(resumed.cells[i].ok());
        EXPECT_TRUE(identical(*resumed.cells[i].measurement,
                              *reference.cells[i].measurement));
    }
}

TEST(Sweep, StopFlagInPerCellModeCancelsToo)
{
    ExperimentRunner runner(0xBEEF);
    std::atomic<bool> stop{true};
    SweepOptions options;
    options.threads = 2;
    options.batchFill = false;
    options.stopFlag = &stop;
    SweepEngine engine(runner, options);
    const SweepReport report = engine.run(testConfigs(),
                                          testBenchmarks());
    for (const SweepCell &cell : report.cells)
        EXPECT_EQ(cell.status.code(), StatusCode::Cancelled);
    EXPECT_EQ(runner.cacheStats().lookups(), 0u);
}

TEST(Sweep, CacheStatsResetKeepsEntries)
{
    ExperimentRunner runner(0xBEEF);
    const auto cfg = stockConfig(processorById("Atom (45)"));
    const auto &bench = benchmarkByName("mcf");
    runner.measure(cfg, bench);
    EXPECT_EQ(runner.cacheStats().misses, 1u);

    runner.resetCacheStats();
    EXPECT_EQ(runner.cacheStats().lookups(), 0u);
    runner.measure(cfg, bench);
    EXPECT_EQ(runner.cacheStats().hits, 1u);
    EXPECT_EQ(runner.cacheStats().misses, 0u);
}

} // namespace lhr
