/**
 * @file
 * Tests for measurement persistence and run comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "store/results_store.hh"
#include "util/status.hh"

namespace lhr
{

namespace
{

StoredResult
row(const std::string &cfg, const std::string &bench, double t,
    double w)
{
    return {cfg, bench, t, 0.01, w, 0.01};
}

} // namespace

TEST(Store, PutFindOverwrite)
{
    ResultStore store;
    store.put(row("cfgA", "mcf", 10.0, 40.0));
    EXPECT_EQ(store.size(), 1u);
    const StoredResult *found = store.find("cfgA", "mcf");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec, 10.0);
    EXPECT_DOUBLE_EQ(found->energyJ(), 400.0);

    store.put(row("cfgA", "mcf", 12.0, 40.0)); // overwrite
    EXPECT_EQ(store.size(), 1u);
    EXPECT_DOUBLE_EQ(store.find("cfgA", "mcf")->timeSec, 12.0);

    EXPECT_EQ(store.find("cfgA", "gcc"), nullptr);
    EXPECT_EQ(store.find("cfgB", "mcf"), nullptr);
}

TEST(Store, SaveLoadRoundTrip)
{
    ResultStore store;
    store.put(row("i7 (45) 4C2T@2.7GHz", "mcf", 1805.25, 48.39));
    store.put(row("Atom (45) 1C2T@1.7GHz", "xalan", 14.0, 2.5));
    // A label with a comma exercises quoting.
    store.put(row("cfg,with,commas", "b\"quoted\"", 1.5, 2.5));

    std::ostringstream os;
    store.save(os);
    std::istringstream is(os.str());
    const ResultStore loaded = ResultStore::load(is);

    EXPECT_EQ(loaded.size(), store.size());
    for (const auto *original : store.all()) {
        const StoredResult *copy = loaded.find(
            original->configLabel, original->benchmark);
        ASSERT_NE(copy, nullptr) << original->configLabel;
        EXPECT_NEAR(copy->timeSec, original->timeSec, 1e-5);
        EXPECT_NEAR(copy->powerW, original->powerW, 1e-5);
        EXPECT_NEAR(copy->timeCi95Rel, original->timeCi95Rel, 1e-5);
    }
}

TEST(Store, LoadRejectsGarbage)
{
    {
        std::istringstream is("not,a,store\n");
        EXPECT_DEATH(ResultStore::load(is), "header");
    }
    {
        std::istringstream is(
            "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
            "cfg,mcf,1.0,0.01\n");
        EXPECT_DEATH(ResultStore::load(is), "fields");
    }
    {
        std::istringstream is(
            "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
            "cfg,mcf,banana,0.01,40.0,0.01\n");
        EXPECT_DEATH(ResultStore::load(is), "bad number");
    }
}

TEST(Store, LoadAcceptsCrlfLineEndings)
{
    // Regression: a store file written or edited on Windows carries
    // CRLF line ends; getline used to leave the '\r' in the last
    // field and parseDouble fatal()ed on it.
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\r\n"
        "cfg,mcf,1.500000,0.010000,40.250000,0.020000\r\n"
        "\r\n"
        "cfg,xalan,2.000000,0.010000,30.000000,0.010000\r\n");
    const ResultStore loaded = ResultStore::load(is);
    EXPECT_EQ(loaded.size(), 2u);
    const StoredResult *found = loaded.find("cfg", "mcf");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec, 1.5);
    EXPECT_DOUBLE_EQ(found->powerW, 40.25);
    EXPECT_DOUBLE_EQ(found->powerCi95Rel, 0.02);
}

TEST(Store, LoadToleratesPaddedNumericFields)
{
    // Hand-edited files often pick up stray spaces around numbers.
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        "cfg,mcf, 1.5 ,0.01, 40.25\t,0.02\n");
    const ResultStore loaded = ResultStore::load(is);
    const StoredResult *found = loaded.find("cfg", "mcf");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec, 1.5);
    EXPECT_DOUBLE_EQ(found->powerW, 40.25);
}

TEST(Store, LoadStillRejectsWhitespaceOnlyNumber)
{
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        "cfg,mcf,  ,0.01,40.0,0.01\n");
    EXPECT_DEATH(ResultStore::load(is), "bad number");
}

TEST(Store, TryLoadReportsTypedLineNumberedErrors)
{
    const std::string header =
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n";

    struct Case
    {
        const char *label;
        std::string input;
        std::string expectInMessage;
    };
    const Case cases[] = {
        {"wrong header", "not,a,store\n", "header"},
        {"truncated row", header + "cfg,mcf,1.0,0.01\n",
         "line 2 has 4 fields"},
        {"extra fields", header + "cfg,mcf,1.0,0.01,40.0,0.01,9\n",
         "line 2 has 7 fields"},
        {"non-numeric", header + "cfg,mcf,banana,0.01,40.0,0.01\n",
         "line 2"},
        {"nan field", header + "cfg,mcf,nan,0.01,40.0,0.01\n",
         "line 2"},
        {"inf field", header + "cfg,mcf,1.0,0.01,inf,0.01\n",
         "line 2"},
        {"duplicate key",
         header + "cfg,mcf,1.0,0.01,40.0,0.01\n"
                  "cfg,mcf,2.0,0.01,41.0,0.01\n",
         "line 3: duplicate row"},
        {"error after good rows",
         header + "cfg,mcf,1.0,0.01,40.0,0.01\n"
                  "cfg,gcc,oops,0.01,40.0,0.01\n",
         "line 3"},
    };

    for (const Case &c : cases) {
        std::istringstream is(c.input);
        const Expected<ResultStore> loaded = ResultStore::tryLoad(is);
        ASSERT_FALSE(loaded.ok()) << c.label;
        EXPECT_EQ(loaded.status().code(), StatusCode::ParseError)
            << c.label;
        EXPECT_NE(loaded.status().message().find(c.expectInMessage),
                  std::string::npos)
            << c.label << ": " << loaded.status().message();
    }

    // The same matrix through tryLoad never kills the process — the
    // paper's 45-config sweep must shrug off one corrupt snapshot.
    std::istringstream good(header + "cfg,mcf,1.0,0.01,40.0,0.01\n");
    const Expected<ResultStore> loaded = ResultStore::tryLoad(good);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 1u);
}

TEST(Store, TryLoadFileReportsMissingPath)
{
    const Expected<ResultStore> loaded =
        ResultStore::tryLoadFile("/no/such/dir/store.csv");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::IoError);
    EXPECT_NE(loaded.status().message().find("cannot open"),
              std::string::npos);
}

TEST(Store, SaveToFileRoundTripsAtomically)
{
    ResultStore store;
    store.put(row("cfgA", "mcf", 10.0, 40.0));
    store.put(row("cfg,with,commas", "db", 1.5, 2.5));

    const std::string path =
        testing::TempDir() + "store_roundtrip.csv";
    const Status saved = store.saveToFile(path);
    ASSERT_TRUE(saved.ok()) << saved.toString();
    // The temp file must be gone after the rename.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    const Expected<ResultStore> loaded =
        ResultStore::tryLoadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().size(), store.size());
    ASSERT_NE(loaded.value().find("cfgA", "mcf"), nullptr);
    std::remove(path.c_str());
}

TEST(Store, SaveToFileOverwriteKeepsOldFileOnFailure)
{
    const std::string path = testing::TempDir() + "store_keep.csv";
    ResultStore store;
    store.put(row("cfg", "mcf", 10.0, 40.0));
    ASSERT_TRUE(store.saveToFile(path).ok());

    // Writing into a directory that does not exist fails without
    // touching the good file written above.
    const Status bad = store.saveToFile("/no/such/dir/store.csv");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), StatusCode::IoError);
    const Expected<ResultStore> still =
        ResultStore::tryLoadFile(path);
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value().size(), 1u);
    std::remove(path.c_str());
}

TEST(Store, LoadSkipsBlankLines)
{
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        "cfg,mcf,1.000000,0.010000,40.000000,0.010000\n"
        "\n");
    const ResultStore loaded = ResultStore::load(is);
    EXPECT_EQ(loaded.size(), 1u);
}

TEST(Store, CompareCleanWhenIdentical)
{
    ResultStore a;
    a.put(row("cfg", "mcf", 10.0, 40.0));
    a.put(row("cfg", "gcc", 5.0, 35.0));
    const auto cmp = compareStores(a, a, 0.01);
    EXPECT_TRUE(cmp.clean());
    EXPECT_EQ(cmp.compared, 2u);
}

TEST(Store, CompareFlagsTimeRegression)
{
    ResultStore before, after;
    before.put(row("cfg", "mcf", 10.0, 40.0));
    after.put(row("cfg", "mcf", 11.0, 40.0)); // +10% time
    const auto cmp = compareStores(before, after, 0.05);
    ASSERT_EQ(cmp.regressions.size(), 1u);
    EXPECT_NEAR(cmp.regressions[0].timeRatio, 1.1, 1e-9);
    EXPECT_NEAR(cmp.regressions[0].powerRatio, 1.0, 1e-9);
    EXPECT_NEAR(cmp.regressions[0].energyRatio, 1.1, 1e-9);
    EXPECT_FALSE(cmp.clean());
}

TEST(Store, CompareWithinToleranceIsClean)
{
    ResultStore before, after;
    before.put(row("cfg", "mcf", 10.0, 40.0));
    after.put(row("cfg", "mcf", 10.3, 40.8)); // 3% / 2%
    EXPECT_TRUE(compareStores(before, after, 0.05).clean());
    EXPECT_FALSE(compareStores(before, after, 0.01).clean());
    EXPECT_DEATH(compareStores(before, after, -0.1), "tolerance");
}

TEST(Store, CompareReportsMissingRows)
{
    ResultStore before, after;
    before.put(row("cfg", "mcf", 10.0, 40.0));
    before.put(row("cfg", "gcc", 5.0, 35.0));
    after.put(row("cfg", "mcf", 10.0, 40.0));
    after.put(row("cfg", "xalan", 2.0, 50.0));
    const auto cmp = compareStores(before, after, 0.05);
    ASSERT_EQ(cmp.onlyInBefore.size(), 1u);
    ASSERT_EQ(cmp.onlyInAfter.size(), 1u);
    EXPECT_NE(cmp.onlyInBefore[0].find("gcc"), std::string::npos);
    EXPECT_NE(cmp.onlyInAfter[0].find("xalan"), std::string::npos);
}

TEST(Store, SnapshotMatchesRunner)
{
    ExperimentRunner runner(0xFACE);
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
    };
    const ResultStore store = ResultStore::snapshot(runner, configs);
    EXPECT_EQ(store.size(), allBenchmarks().size());
    const auto &bench = benchmarkByName("jess");
    const StoredResult *found =
        store.find(configs[0].label(), bench.name);
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec,
                     runner.measure(configs[0], bench).timeSec);
}

TEST(Store, SnapshotsAreReproducible)
{
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
    };
    ExperimentRunner a(0xF00D), b(0xF00D);
    const auto storeA = ResultStore::snapshot(a, configs);
    const auto storeB = ResultStore::snapshot(b, configs);
    EXPECT_TRUE(compareStores(storeA, storeB, 1e-12).clean());
}

} // namespace lhr
