/**
 * @file
 * Tests for measurement persistence and run comparison.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "store/results_store.hh"
#include "util/status.hh"

namespace lhr
{

namespace
{

StoredResult
row(const std::string &cfg, const std::string &bench, double t,
    double w)
{
    return {cfg, bench, t, 0.01, w, 0.01};
}

/** save() into a string; the store must be serializable. */
std::string
savedText(const ResultStore &store)
{
    std::ostringstream os;
    const Status saved = store.save(os);
    EXPECT_TRUE(saved.ok()) << saved.toString();
    return os.str();
}

} // namespace

TEST(Store, PutFindOverwrite)
{
    ResultStore store;
    store.put(row("cfgA", "mcf", 10.0, 40.0));
    EXPECT_EQ(store.size(), 1u);
    const StoredResult *found = store.find("cfgA", "mcf");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec, 10.0);
    EXPECT_DOUBLE_EQ(found->energyJ(), 400.0);

    store.put(row("cfgA", "mcf", 12.0, 40.0)); // overwrite
    EXPECT_EQ(store.size(), 1u);
    EXPECT_DOUBLE_EQ(store.find("cfgA", "mcf")->timeSec, 12.0);

    EXPECT_EQ(store.find("cfgA", "gcc"), nullptr);
    EXPECT_EQ(store.find("cfgB", "mcf"), nullptr);
}

TEST(Store, SaveLoadRoundTrip)
{
    ResultStore store;
    store.put(row("i7 (45) 4C2T@2.7GHz", "mcf", 1805.25, 48.39));
    store.put(row("Atom (45) 1C2T@1.7GHz", "xalan", 14.0, 2.5));
    // A label with a comma exercises quoting.
    store.put(row("cfg,with,commas", "b\"quoted\"", 1.5, 2.5));

    std::ostringstream os;
    ASSERT_TRUE(store.save(os).ok());
    std::istringstream is(os.str());
    const ResultStore loaded = ResultStore::load(is);

    EXPECT_EQ(loaded.size(), store.size());
    for (const auto *original : store.all()) {
        const StoredResult *copy = loaded.find(
            original->configLabel, original->benchmark);
        ASSERT_NE(copy, nullptr) << original->configLabel;
        EXPECT_NEAR(copy->timeSec, original->timeSec, 1e-5);
        EXPECT_NEAR(copy->powerW, original->powerW, 1e-5);
        EXPECT_NEAR(copy->timeCi95Rel, original->timeCi95Rel, 1e-5);
    }
}

TEST(Store, LoadRejectsGarbage)
{
    {
        std::istringstream is("not,a,store\n");
        EXPECT_DEATH(ResultStore::load(is), "header");
    }
    {
        std::istringstream is(
            "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
            "cfg,mcf,1.0,0.01\n");
        EXPECT_DEATH(ResultStore::load(is), "fields");
    }
    {
        std::istringstream is(
            "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
            "cfg,mcf,banana,0.01,40.0,0.01\n");
        EXPECT_DEATH(ResultStore::load(is), "bad number");
    }
}

TEST(Store, LoadAcceptsCrlfLineEndings)
{
    // Regression: a store file written or edited on Windows carries
    // CRLF line ends; getline used to leave the '\r' in the last
    // field and parseDouble fatal()ed on it.
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\r\n"
        "cfg,mcf,1.500000,0.010000,40.250000,0.020000\r\n"
        "\r\n"
        "cfg,xalan,2.000000,0.010000,30.000000,0.010000\r\n");
    const ResultStore loaded = ResultStore::load(is);
    EXPECT_EQ(loaded.size(), 2u);
    const StoredResult *found = loaded.find("cfg", "mcf");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec, 1.5);
    EXPECT_DOUBLE_EQ(found->powerW, 40.25);
    EXPECT_DOUBLE_EQ(found->powerCi95Rel, 0.02);
}

TEST(Store, LoadToleratesPaddedNumericFields)
{
    // Hand-edited files often pick up stray spaces around numbers.
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        "cfg,mcf, 1.5 ,0.01, 40.25\t,0.02\n");
    const ResultStore loaded = ResultStore::load(is);
    const StoredResult *found = loaded.find("cfg", "mcf");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec, 1.5);
    EXPECT_DOUBLE_EQ(found->powerW, 40.25);
}

TEST(Store, LoadStillRejectsWhitespaceOnlyNumber)
{
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        "cfg,mcf,  ,0.01,40.0,0.01\n");
    EXPECT_DEATH(ResultStore::load(is), "bad number");
}

TEST(Store, TryLoadReportsTypedLineNumberedErrors)
{
    const std::string header =
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n";

    struct Case
    {
        const char *label;
        std::string input;
        std::string expectInMessage;
    };
    const Case cases[] = {
        {"wrong header", "not,a,store\n", "header"},
        {"truncated row", header + "cfg,mcf,1.0,0.01\n",
         "line 2 has 4 fields"},
        {"extra fields", header + "cfg,mcf,1.0,0.01,40.0,0.01,9\n",
         "line 2 has 7 fields"},
        {"non-numeric", header + "cfg,mcf,banana,0.01,40.0,0.01\n",
         "line 2"},
        {"nan field", header + "cfg,mcf,nan,0.01,40.0,0.01\n",
         "line 2"},
        {"inf field", header + "cfg,mcf,1.0,0.01,inf,0.01\n",
         "line 2"},
        {"duplicate key",
         header + "cfg,mcf,1.0,0.01,40.0,0.01\n"
                  "cfg,mcf,2.0,0.01,41.0,0.01\n",
         "line 3: duplicate row"},
        {"error after good rows",
         header + "cfg,mcf,1.0,0.01,40.0,0.01\n"
                  "cfg,gcc,oops,0.01,40.0,0.01\n",
         "line 3"},
    };

    for (const Case &c : cases) {
        std::istringstream is(c.input);
        const Expected<ResultStore> loaded = ResultStore::tryLoad(is);
        ASSERT_FALSE(loaded.ok()) << c.label;
        EXPECT_EQ(loaded.status().code(), StatusCode::ParseError)
            << c.label;
        EXPECT_NE(loaded.status().message().find(c.expectInMessage),
                  std::string::npos)
            << c.label << ": " << loaded.status().message();
    }

    // The same matrix through tryLoad never kills the process — the
    // paper's 45-config sweep must shrug off one corrupt snapshot.
    std::istringstream good(header + "cfg,mcf,1.0,0.01,40.0,0.01\n");
    const Expected<ResultStore> loaded = ResultStore::tryLoad(good);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 1u);
}

TEST(Store, TryLoadFileReportsMissingPath)
{
    const Expected<ResultStore> loaded =
        ResultStore::tryLoadFile("/no/such/dir/store.csv");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::IoError);
    EXPECT_NE(loaded.status().message().find("cannot open"),
              std::string::npos);
}

TEST(Store, SaveToFileRoundTripsAtomically)
{
    ResultStore store;
    store.put(row("cfgA", "mcf", 10.0, 40.0));
    store.put(row("cfg,with,commas", "db", 1.5, 2.5));

    const std::string path =
        testing::TempDir() + "store_roundtrip.csv";
    const Status saved = store.saveToFile(path);
    ASSERT_TRUE(saved.ok()) << saved.toString();
    // The temp file must be gone after the rename.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    const Expected<ResultStore> loaded =
        ResultStore::tryLoadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().size(), store.size());
    ASSERT_NE(loaded.value().find("cfgA", "mcf"), nullptr);
    std::remove(path.c_str());
}

TEST(Store, SaveToFileOverwriteKeepsOldFileOnFailure)
{
    const std::string path = testing::TempDir() + "store_keep.csv";
    ResultStore store;
    store.put(row("cfg", "mcf", 10.0, 40.0));
    ASSERT_TRUE(store.saveToFile(path).ok());

    // Writing into a directory that does not exist fails without
    // touching the good file written above.
    const Status bad = store.saveToFile("/no/such/dir/store.csv");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), StatusCode::IoError);
    const Expected<ResultStore> still =
        ResultStore::tryLoadFile(path);
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value().size(), 1u);
    std::remove(path.c_str());
}

TEST(Store, LoadSkipsBlankLines)
{
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        "cfg,mcf,1.000000,0.010000,40.000000,0.010000\n"
        "\n");
    const ResultStore loaded = ResultStore::load(is);
    EXPECT_EQ(loaded.size(), 1u);
}

TEST(Store, CompareCleanWhenIdentical)
{
    ResultStore a;
    a.put(row("cfg", "mcf", 10.0, 40.0));
    a.put(row("cfg", "gcc", 5.0, 35.0));
    const auto cmp = compareStores(a, a, 0.01);
    EXPECT_TRUE(cmp.clean());
    EXPECT_EQ(cmp.compared, 2u);
}

TEST(Store, CompareFlagsTimeRegression)
{
    ResultStore before, after;
    before.put(row("cfg", "mcf", 10.0, 40.0));
    after.put(row("cfg", "mcf", 11.0, 40.0)); // +10% time
    const auto cmp = compareStores(before, after, 0.05);
    ASSERT_EQ(cmp.regressions.size(), 1u);
    EXPECT_NEAR(cmp.regressions[0].timeRatio, 1.1, 1e-9);
    EXPECT_NEAR(cmp.regressions[0].powerRatio, 1.0, 1e-9);
    EXPECT_NEAR(cmp.regressions[0].energyRatio, 1.1, 1e-9);
    EXPECT_FALSE(cmp.clean());
}

TEST(Store, CompareWithinToleranceIsClean)
{
    ResultStore before, after;
    before.put(row("cfg", "mcf", 10.0, 40.0));
    after.put(row("cfg", "mcf", 10.3, 40.8)); // 3% / 2%
    EXPECT_TRUE(compareStores(before, after, 0.05).clean());
    EXPECT_FALSE(compareStores(before, after, 0.01).clean());
    EXPECT_DEATH(compareStores(before, after, -0.1), "tolerance");
}

TEST(Store, CompareReportsMissingRows)
{
    ResultStore before, after;
    before.put(row("cfg", "mcf", 10.0, 40.0));
    before.put(row("cfg", "gcc", 5.0, 35.0));
    after.put(row("cfg", "mcf", 10.0, 40.0));
    after.put(row("cfg", "xalan", 2.0, 50.0));
    const auto cmp = compareStores(before, after, 0.05);
    ASSERT_EQ(cmp.onlyInBefore.size(), 1u);
    ASSERT_EQ(cmp.onlyInAfter.size(), 1u);
    EXPECT_NE(cmp.onlyInBefore[0].find("gcc"), std::string::npos);
    EXPECT_NE(cmp.onlyInAfter[0].find("xalan"), std::string::npos);
}

TEST(Store, SnapshotMatchesRunner)
{
    ExperimentRunner runner(0xFACE);
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
    };
    const ResultStore store = ResultStore::snapshot(runner, configs);
    EXPECT_EQ(store.size(), allBenchmarks().size());
    const auto &bench = benchmarkByName("jess");
    const StoredResult *found =
        store.find(configs[0].label(), bench.name);
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->timeSec,
                     runner.measure(configs[0], bench).timeSec);
}

TEST(Store, SnapshotsAreReproducible)
{
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
    };
    ExperimentRunner a(0xF00D), b(0xF00D);
    const auto storeA = ResultStore::snapshot(a, configs);
    const auto storeB = ResultStore::snapshot(b, configs);
    EXPECT_TRUE(compareStores(storeA, storeB, 1e-12).clean());
}

TEST(Store, SnapshotBitIdenticalToSerialLoop)
{
    // snapshot() now runs on the parallel SweepEngine; the engine's
    // determinism contract says the rebuild must be bit-identical
    // to the serial double loop it replaced.
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
        stockConfig(processorById("i7 (45)")),
    };
    ExperimentRunner parallel(0xFACE);
    const ResultStore store = ResultStore::snapshot(parallel, configs);

    ExperimentRunner serial(0xFACE);
    ResultStore byHand;
    for (const auto &cfg : configs)
        for (const auto &bench : allBenchmarks())
            byHand.put(cfg, bench, serial.measure(cfg, bench));

    EXPECT_EQ(savedText(store), savedText(byHand));
}

TEST(Store, SnapshotTakesAnExplicitGrid)
{
    // The old snapshot hard-coded allBenchmarks(); the overload
    // accepts any benchmark subset.
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
    };
    const std::vector<Benchmark> benchmarks = {
        benchmarkByName("mcf"), benchmarkByName("xalan")};
    ExperimentRunner runner(0xFACE);
    const ResultStore store =
        ResultStore::snapshot(runner, configs, benchmarks);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_NE(store.find(configs[0].label(), "mcf"), nullptr);
    EXPECT_NE(store.find(configs[0].label(), "xalan"), nullptr);
}

TEST(Store, CompareFlagsZeroBaselineAsRegression)
{
    // A zero baseline makes the after/before ratio inf (or NaN for
    // 0/0); NaN fails the `> tolerance` check, so the old compare
    // reported a real regression as clean.
    ResultStore before, after;
    before.put(row("cfg", "mcf", 0.0, 40.0));
    after.put(row("cfg", "mcf", 11.0, 40.0));
    const auto cmp = compareStores(before, after, 0.05);
    ASSERT_EQ(cmp.regressions.size(), 1u);
    EXPECT_FALSE(cmp.clean());
    EXPECT_FALSE(std::isfinite(cmp.regressions[0].timeRatio));
}

TEST(Store, CompareFlagsNanBaselineAsRegression)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    ResultStore before, after;
    before.put(row("cfg", "mcf", nan, 40.0));
    after.put(row("cfg", "mcf", 10.0, 40.0));
    EXPECT_EQ(compareStores(before, after, 0.05).regressions.size(),
              1u);

    // NaN power in the after store is just as poisonous.
    ResultStore before2, after2;
    before2.put(row("cfg", "mcf", 10.0, 40.0));
    after2.put(row("cfg", "mcf", 10.0, nan));
    EXPECT_EQ(compareStores(before2, after2, 0.05).regressions.size(),
              1u);
}

TEST(Store, CompareFlagsZeroOnZeroBaseline)
{
    // 0/0 is NaN: two zero rows are a nonsense comparison, not a
    // clean one.
    ResultStore a;
    a.put(row("cfg", "mcf", 0.0, 40.0));
    EXPECT_FALSE(compareStores(a, a, 0.05).clean());
}

TEST(Store, SaveRejectsNonFiniteValues)
{
    // The load path rejects nan/inf fields, so the save path must
    // refuse to produce such a file instead of poisoning it.
    const double inf = std::numeric_limits<double>::infinity();
    ResultStore store;
    store.put(row("cfg", "mcf", 1.0, 40.0));
    store.put(row("cfg", "gcc", inf, 40.0));

    std::ostringstream os;
    const Status saved = store.save(os);
    ASSERT_FALSE(saved.ok());
    EXPECT_EQ(saved.code(), StatusCode::InvalidArgument);
    EXPECT_NE(saved.message().find("gcc"), std::string::npos);
    // Nothing was emitted — not even the header or the good row.
    EXPECT_TRUE(os.str().empty());
}

TEST(Store, SaveToFileRejectsNonFiniteAndKeepsOldFile)
{
    const std::string path = testing::TempDir() + "store_finite.csv";
    ResultStore good;
    good.put(row("cfg", "mcf", 1.0, 40.0));
    ASSERT_TRUE(good.saveToFile(path).ok());

    ResultStore bad;
    bad.put(row("cfg", "mcf",
                std::numeric_limits<double>::quiet_NaN(), 40.0));
    const Status saved = bad.saveToFile(path);
    ASSERT_FALSE(saved.ok());
    EXPECT_EQ(saved.code(), StatusCode::InvalidArgument);
    // The temp file is cleaned up and the good snapshot survives.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    const Expected<ResultStore> still = ResultStore::tryLoadFile(path);
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value().size(), 1u);
    std::remove(path.c_str());
}

TEST(Store, HostileLabelsRoundTrip)
{
    // Labels a hand-edited or adversarial file can carry: commas,
    // quotes, leading/trailing whitespace, and combinations. Each
    // must survive save -> tryLoad -> save byte-identically.
    const std::string labels[] = {
        "plain",
        "a,b",
        "\"quoted\"",
        " leading space",
        "trailing space ",
        " \"a,b\" ",
        "tab\tinside",
        "  ",
        "comma, \"and quote\"",
    };
    ResultStore store;
    int n = 0;
    for (const std::string &label : labels)
        store.put(row(label, "bench" + std::to_string(n++), 1.5, 2.5));

    const std::string first = savedText(store);
    std::istringstream is(first);
    const Expected<ResultStore> loaded = ResultStore::tryLoad(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    ASSERT_EQ(loaded.value().size(), store.size());
    for (const auto *original : store.all()) {
        EXPECT_NE(loaded.value().find(original->configLabel,
                                      original->benchmark),
                  nullptr)
            << "'" << original->configLabel << "'";
    }
    EXPECT_EQ(savedText(loaded.value()), first);
}

TEST(Store, QuotedFieldAfterStrayWhitespaceStaysOneField)
{
    // Regression: splitCsvLine only entered quoted mode when the
    // quote was the first character of the field, so a hand-edited
    // ` "a,b"` split at the embedded comma.
    std::istringstream is(
        "config,benchmark,time_s,time_ci95,power_w,power_ci95\n"
        " \"a,b\" ,mcf,1.500000,0.010000,40.000000,0.010000\n");
    const Expected<ResultStore> loaded = ResultStore::tryLoad(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_NE(loaded.value().find("a,b", "mcf"), nullptr);
}

TEST(Store, HostileLabelsSurviveCrlfFiles)
{
    // The same hostile labels written through a CRLF file (the
    // loader strips the '\r' the line reader leaves behind).
    ResultStore store;
    store.put(row("a,b", "mcf", 1.5, 2.5));
    store.put(row(" padded ", "gcc", 2.5, 3.5));
    std::string text = savedText(store);
    std::string crlf;
    for (char ch : text)
        crlf += (ch == '\n') ? std::string("\r\n") : std::string(1, ch);
    std::istringstream is(crlf);
    const Expected<ResultStore> loaded = ResultStore::tryLoad(is);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_NE(loaded.value().find("a,b", "mcf"), nullptr);
    EXPECT_NE(loaded.value().find(" padded ", "gcc"), nullptr);
}

TEST(Store, PropertyRoundTripIsByteStable)
{
    // Property-style: generated stores with hostile labels and
    // random finite values must satisfy save -> tryLoad -> save
    // byte-identity. Seeded mt19937, so a failure reproduces.
    std::mt19937 rng(0xC0FFEE);
    const std::string alphabet =
        "abcXYZ059 ,\"\t_-()/";
    std::uniform_int_distribution<size_t> lenDist(0, 12);
    std::uniform_int_distribution<size_t> chDist(
        0, alphabet.size() - 1);
    std::uniform_real_distribution<double> valDist(0.0, 5000.0);
    std::uniform_int_distribution<int> rowsDist(1, 12);

    auto randomLabel = [&] {
        std::string label;
        const size_t len = lenDist(rng);
        for (size_t i = 0; i < len; ++i)
            label += alphabet[chDist(rng)];
        return label;
    };

    for (int iter = 0; iter < 50; ++iter) {
        ResultStore store;
        const int n = rowsDist(rng);
        for (int i = 0; i < n; ++i) {
            store.put({randomLabel(),
                       randomLabel() + std::to_string(i),
                       valDist(rng), valDist(rng) / 1000.0,
                       valDist(rng), valDist(rng) / 1000.0});
        }
        const std::string first = savedText(store);
        std::istringstream is(first);
        const Expected<ResultStore> loaded = ResultStore::tryLoad(is);
        ASSERT_TRUE(loaded.ok())
            << "iter " << iter << ": " << loaded.status().toString()
            << "\n" << first;
        EXPECT_EQ(savedText(loaded.value()), first) << "iter " << iter;
    }
}

TEST(Store, MergeDisjointStores)
{
    ResultStore a, b;
    a.put(row("cfg", "mcf", 10.0, 40.0));
    a.put(row("cfg", "gcc", 5.0, 35.0));
    b.put(row("cfg", "xalan", 2.0, 50.0));
    b.put(row("other", "mcf", 3.0, 20.0));

    ASSERT_TRUE(a.merge(b).ok());
    EXPECT_EQ(a.size(), 4u);
    EXPECT_NE(a.find("cfg", "mcf"), nullptr);
    EXPECT_NE(a.find("other", "mcf"), nullptr);
}

TEST(Store, MergeToleratesOverlappingIdenticalRows)
{
    ResultStore a, b;
    a.put(row("cfg", "mcf", 10.0, 40.0));
    a.put(row("cfg", "gcc", 5.0, 35.0));
    b.put(row("cfg", "gcc", 5.0, 35.0)); // same bits
    b.put(row("cfg", "xalan", 2.0, 50.0));

    ASSERT_TRUE(a.merge(b).ok());
    EXPECT_EQ(a.size(), 3u);
}

TEST(Store, MergeConflictOnDivergentRowsLeavesStoreUntouched)
{
    ResultStore a, b;
    a.put(row("cfg", "mcf", 10.0, 40.0));
    b.put(row("cfg", "xalan", 2.0, 50.0));   // new row
    b.put(row("cfg", "mcf", 10.0, 40.0001)); // differing bits

    const Status merged = a.merge(b);
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.code(), StatusCode::Conflict);
    EXPECT_NE(merged.message().find("mcf"), std::string::npos);
    // Validate-then-apply: nothing from b landed, not even the
    // non-conflicting row.
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a.find("cfg", "xalan"), nullptr);
    EXPECT_DOUBLE_EQ(a.find("cfg", "mcf")->powerW, 40.0);
}

TEST(Store, MergeEmptyAndSelf)
{
    ResultStore a, empty;
    a.put(row("cfg", "mcf", 10.0, 40.0));
    ASSERT_TRUE(a.merge(empty).ok());
    EXPECT_EQ(a.size(), 1u);
    ASSERT_TRUE(empty.merge(a).ok());
    EXPECT_EQ(empty.size(), 1u);
    // Self-merge: every row identical to itself.
    ASSERT_TRUE(a.merge(a).ok());
    EXPECT_EQ(a.size(), 1u);
}

} // namespace lhr
