/**
 * @file
 * Tests for the Turbo Boost governor (paper section 3.6).
 */

#include <gtest/gtest.h>

#include "power/chip_power.hh"
#include "power/turbo.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }

double
alwaysCool(double)
{
    return 50.0;
}

} // namespace

TEST(Turbo, MaxSteps)
{
    EXPECT_EQ(TurboGovernor::maxSteps(1), 2);
    EXPECT_EQ(TurboGovernor::maxSteps(2), 1);
    EXPECT_EQ(TurboGovernor::maxSteps(4), 1);
}

TEST(Turbo, MaxStepsPerSpecMatchesTheBinLadder)
{
    // The paper parts reduce to the legacy Nehalem ladder.
    for (const int active : {1, 2, 3, 4})
        EXPECT_EQ(TurboGovernor::maxSteps(i7(), active),
                  TurboGovernor::maxSteps(active));

    // Server bins interpolate: one step lost per extra active core,
    // floored at the published all-core count.
    const ProcessorSpec &xeon = processorById("XeonE5 (32)");
    EXPECT_EQ(TurboGovernor::maxSteps(xeon, 1), xeon.turboSteps1C);
    EXPECT_EQ(TurboGovernor::maxSteps(xeon, 2),
              xeon.turboSteps1C - 1);
    EXPECT_EQ(TurboGovernor::maxSteps(xeon, 4),
              xeon.turboStepsAllC);
    EXPECT_EQ(TurboGovernor::maxSteps(xeon, xeon.cores),
              xeon.turboStepsAllC);
}

TEST(Turbo, NoBoostWhenDisabled)
{
    const auto cfg = withTurbo(stockConfig(i7()), false);
    const double granted = TurboGovernor::grant(
        cfg, 1, [](double) { return 10.0; }, alwaysCool);
    EXPECT_DOUBLE_EQ(granted, cfg.clockGhz);
}

TEST(Turbo, NoBoostOnNonTurboParts)
{
    const auto cfg = stockConfig(processorById("C2D (65)"));
    const double granted = TurboGovernor::grant(
        cfg, 1, [](double) { return 10.0; }, alwaysCool);
    EXPECT_DOUBLE_EQ(granted, cfg.clockGhz);
}

TEST(Turbo, NoBoostWhenDownClocked)
{
    // Turbo only engages at the highest clock setting (section 3.6).
    const auto cfg = withClock(stockConfig(i7()), 1.6);
    const double granted = TurboGovernor::grant(
        cfg, 1, [](double) { return 10.0; }, alwaysCool);
    EXPECT_DOUBLE_EQ(granted, 1.6);
}

TEST(Turbo, SingleCoreGetsTwoSteps)
{
    const auto cfg = stockConfig(i7());
    const double granted = TurboGovernor::grant(
        cfg, 1, [](double) { return 30.0; }, alwaysCool);
    EXPECT_NEAR(granted,
                cfg.clockGhz + 2.0 * cfg.spec->turboStepGhz,
                1e-12);
}

TEST(Turbo, MultiCoreGetsOneStep)
{
    const auto cfg = stockConfig(i7());
    const double granted = TurboGovernor::grant(
        cfg, 4, [](double) { return 60.0; }, alwaysCool);
    EXPECT_NEAR(granted, cfg.clockGhz + cfg.spec->turboStepGhz,
                1e-12);
}

TEST(Turbo, PowerHeadroomDeniesBoost)
{
    const auto cfg = stockConfig(i7());
    // Any boosted clock would exceed the TDP headroom.
    const double granted = TurboGovernor::grant(
        cfg, 4,
        [&](double f) {
            return f > cfg.clockGhz ? cfg.spec->tdpW : 60.0;
        },
        alwaysCool);
    EXPECT_DOUBLE_EQ(granted, cfg.clockGhz);
}

TEST(Turbo, FallsBackToFewerSteps)
{
    // Two steps exceed the budget but one step fits.
    const auto cfg = stockConfig(i7());
    const double oneStep = cfg.clockGhz + cfg.spec->turboStepGhz;
    const double granted = TurboGovernor::grant(
        cfg, 1,
        [&](double f) {
            return f > oneStep + 1e-9 ? cfg.spec->tdpW : 60.0;
        },
        alwaysCool);
    EXPECT_NEAR(granted, oneStep, 1e-12);
}

TEST(Turbo, ThermalCeilingDeniesBoost)
{
    const auto cfg = stockConfig(i7());
    const double granted = TurboGovernor::grant(
        cfg, 1, [](double) { return 30.0; },
        [&](double f) {
            return f > cfg.clockGhz
                ? ThermalModel::throttleJunctionC + 5.0 : 60.0;
        });
    EXPECT_DOUBLE_EQ(granted, cfg.clockGhz);
}

TEST(Turbo, NoActiveCoresPanics)
{
    const auto cfg = stockConfig(i7());
    EXPECT_DEATH(TurboGovernor::grant(
                     cfg, 0, [](double) { return 10.0; }, alwaysCool),
                 "active");
}

} // namespace lhr
