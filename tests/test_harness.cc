/**
 * @file
 * Tests for the measurement harness: determinism, methodology,
 * reference normalization, and aggregation (paper sections 2.5-2.6).
 */

#include <gtest/gtest.h>

#include "harness/aggregate.hh"
#include "harness/reference.hh"
#include "harness/runner.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }

} // namespace

TEST(Runner, DeterministicForEqualSeeds)
{
    ExperimentRunner a(99), b(99);
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("xalan");
    const Measurement &ma = a.measure(cfg, bench);
    const Measurement &mb = b.measure(cfg, bench);
    EXPECT_DOUBLE_EQ(ma.timeSec, mb.timeSec);
    EXPECT_DOUBLE_EQ(ma.powerW, mb.powerW);
    EXPECT_DOUBLE_EQ(ma.timeCi95Rel, mb.timeCi95Rel);
}

TEST(Runner, DifferentSeedsPerturbMeasurements)
{
    ExperimentRunner a(1), b(2);
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("xalan");
    EXPECT_NE(a.measure(cfg, bench).timeSec,
              b.measure(cfg, bench).timeSec);
}

TEST(Runner, OrderIndependentMeasurements)
{
    // Each (config, benchmark) pair derives its own stream, so
    // measuring in a different order gives identical results.
    const auto cfg = stockConfig(i7());
    const auto &first = benchmarkByName("mcf");
    const auto &second = benchmarkByName("xalan");

    ExperimentRunner fwd(7);
    const double t1 = fwd.measure(cfg, first).timeSec;
    const double t2 = fwd.measure(cfg, second).timeSec;

    ExperimentRunner rev(7);
    const double r2 = rev.measure(cfg, second).timeSec;
    const double r1 = rev.measure(cfg, first).timeSec;

    EXPECT_DOUBLE_EQ(t1, r1);
    EXPECT_DOUBLE_EQ(t2, r2);
}

TEST(Runner, NearbyClocksDoNotShareCache)
{
    // The display label rounds the clock to one decimal; the cache
    // must not (regression test for a label-keyed cache collision).
    ExperimentRunner runner(77);
    auto base = withTurbo(stockConfig(processorById("i5 (32)")), false);
    const auto a = withClock(base, 2.60);
    const auto b = withClock(base, 2.64);
    ASSERT_EQ(a.label(), b.label()); // same display label...
    EXPECT_NE(runner.measure(a, benchmarkByName("mcf")).timeSec,
              runner.measure(b, benchmarkByName("mcf")).timeSec);
}

TEST(Runner, CachingReturnsSameObject)
{
    ExperimentRunner runner(3);
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("db");
    const Measurement &a = runner.measure(cfg, bench);
    const Measurement &b = runner.measure(cfg, bench);
    EXPECT_EQ(&a, &b);
}

TEST(Runner, InvocationCountsFollowMethodology)
{
    ExperimentRunner runner(4);
    const auto cfg = stockConfig(i7());
    EXPECT_EQ(runner.measure(cfg, benchmarkByName("mcf")).invocations,
              3);
    EXPECT_EQ(
        runner.measure(cfg, benchmarkByName("ferret")).invocations, 5);
    EXPECT_EQ(
        runner.measure(cfg, benchmarkByName("xalan")).invocations, 20);
}

TEST(Runner, MeasuredPowerTracksTruePower)
{
    ExperimentRunner runner(5);
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("fluidanimate");
    const auto profile = runner.profile(cfg, bench);
    const auto &m = runner.measure(cfg, bench);
    EXPECT_NEAR(m.powerW, profile.power.total(),
                0.06 * profile.power.total());
}

TEST(Runner, MeasuredTimeTracksTrueTime)
{
    ExperimentRunner runner(6);
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("mcf");
    const auto profile = runner.profile(cfg, bench);
    const auto &m = runner.measure(cfg, bench);
    EXPECT_NEAR(m.timeSec, profile.timeSec, 0.05 * profile.timeSec);
}

TEST(Runner, TurboGrantsOnStockI7)
{
    ExperimentRunner runner(8);
    const auto &bench = benchmarkByName("mcf"); // single-threaded
    const auto tb = runner.profile(stockConfig(i7()), bench);
    // One active core: two turbo steps.
    EXPECT_NEAR(tb.grantedClockGhz,
                i7().stockClockGhz + 2.0 * i7().turboStepGhz,
                1e-9);
    const auto noTb =
        runner.profile(withTurbo(stockConfig(i7()), false), bench);
    EXPECT_NEAR(noTb.grantedClockGhz, i7().stockClockGhz, 1e-12);
    EXPECT_LT(tb.timeSec, noTb.timeSec);
}

TEST(Runner, CalibrationRigsMeetQualityGate)
{
    ExperimentRunner runner(9);
    for (const auto &spec : allProcessors())
        EXPECT_GE(runner.calibration(spec).r2(), 0.999) << spec.id;
}

TEST(Reference, CoversAllBenchmarks)
{
    ExperimentRunner runner(10);
    const ReferenceSet ref(runner);
    for (const auto &bench : allBenchmarks()) {
        EXPECT_GT(ref.refTimeSec(bench), 0.0) << bench.name;
        EXPECT_GT(ref.refPowerW(bench), 0.0) << bench.name;
        EXPECT_NEAR(ref.refEnergyJ(bench),
                    ref.refTimeSec(bench) * ref.refPowerW(bench),
                    1e-9) << bench.name;
    }
}

TEST(Reference, IsMeanOfFourMachines)
{
    ExperimentRunner runner(11);
    const ReferenceSet ref(runner);
    const auto &bench = benchmarkByName("gcc");
    double sum = 0.0;
    for (const auto &id : ReferenceSet::referenceProcessorIds()) {
        sum += runner.measure(stockConfig(processorById(id)), bench)
                   .timeSec;
    }
    EXPECT_NEAR(ref.refTimeSec(bench), sum / 4.0, 1e-9);
}

TEST(Reference, HarmonicMeanOfReferencePerfIsOne)
{
    // By construction (paper section 2.6): the mean of the four
    // reference times is the reference, so the harmonic mean of the
    // four speedups is exactly 1 per benchmark.
    ExperimentRunner runner(12);
    const ReferenceSet ref(runner);
    const auto &bench = benchmarkByName("astar");
    double invSum = 0.0;
    for (const auto &id : ReferenceSet::referenceProcessorIds()) {
        const auto cfg = stockConfig(processorById(id));
        const double perf =
            ref.refTimeSec(bench) / runner.measure(cfg, bench).timeSec;
        invSum += 1.0 / perf;
    }
    EXPECT_NEAR(4.0 / invSum, 1.0, 1e-9);
}

TEST(Aggregate, EqualGroupWeighting)
{
    ExperimentRunner runner(13);
    const ReferenceSet ref(runner);
    const auto agg =
        aggregateConfig(runner, ref, stockConfig(i7()));
    double groupMeanOfPerf = 0.0;
    for (const auto &g : agg.byGroup)
        groupMeanOfPerf += g.perf;
    EXPECT_NEAR(agg.weighted.perf, groupMeanOfPerf / 4.0, 1e-12);
}

TEST(Aggregate, MinMaxBracketGroups)
{
    ExperimentRunner runner(14);
    const ReferenceSet ref(runner);
    const auto agg =
        aggregateConfig(runner, ref, stockConfig(i7()));
    for (const auto &g : agg.byGroup) {
        EXPECT_GE(g.perf, agg.minPerf);
        EXPECT_LE(g.perf, agg.maxPerf);
        EXPECT_GE(g.powerW, agg.minPowerW);
        EXPECT_LE(g.powerW, agg.maxPowerW);
    }
}

TEST(Aggregate, EnergyIsPowerTimesTimeNormalized)
{
    ExperimentRunner runner(15);
    const ReferenceSet ref(runner);
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("lusearch");
    const auto r = benchResult(runner, ref, cfg, bench);
    const auto &m = runner.measure(cfg, bench);
    EXPECT_NEAR(r.energy, m.energyJ() / ref.refEnergyJ(bench), 1e-12);
    EXPECT_NEAR(r.perf, ref.refTimeSec(bench) / m.timeSec, 1e-12);
}

TEST(Aggregate, ScalablesOutperformOnManyContexts)
{
    ExperimentRunner runner(16);
    const ReferenceSet ref(runner);
    const auto agg =
        aggregateConfig(runner, ref, stockConfig(i7()));
    EXPECT_GT(agg.group(Group::NativeScalable).perf,
              agg.group(Group::NativeNonScalable).perf);
    EXPECT_GT(agg.group(Group::JavaScalable).perf,
              agg.group(Group::JavaNonScalable).perf);
}

} // namespace lhr
