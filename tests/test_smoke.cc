/**
 * @file
 * End-to-end smoke tests: the lab builds, measures, and aggregates.
 */

#include <gtest/gtest.h>

#include "core/lab.hh"

namespace lhr
{

TEST(Smoke, MeasureOneBenchmark)
{
    Lab lab;
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &m = lab.measure(cfg, benchmarkByName("mcf"));
    EXPECT_GT(m.timeSec, 0.0);
    EXPECT_GT(m.powerW, 1.0);
    EXPECT_LT(m.powerW, cfg.spec->tdpW);
}

TEST(Smoke, SixtyOneBenchmarks)
{
    EXPECT_EQ(allBenchmarks().size(), 61u);
}

TEST(Smoke, FortyFiveConfigurations)
{
    EXPECT_EQ(standardConfigurations().size(), 45u);
    EXPECT_EQ(configurations45nm().size(), 29u);
}

} // namespace lhr
