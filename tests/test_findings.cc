/**
 * @file
 * Integration tests that encode the paper's numbered findings as
 * regression checks on the full pipeline. Each test states the
 * finding it guards.
 */

#include <gtest/gtest.h>

#include "core/lab.hh"

namespace lhr
{

namespace
{

/** One shared lab for the whole suite (results are cached). */
Lab &
lab()
{
    static Lab instance(0xC0FFEEull);
    return instance;
}

GroupedEffect
effectFor(const std::vector<GroupedEffect> &effects,
          const std::string &label)
{
    for (const auto &e : effects)
        if (e.label == label)
            return e;
    ADD_FAILURE() << "no effect labeled " << label;
    return {};
}

} // namespace

// ---------------------------------------------------------------
// Architecture Finding 1: enabling a second core is not
// consistently energy efficient — the i7 pays more power for the
// same performance gain than the i5.
TEST(Findings, A1_CmpNotConsistentlyEfficient)
{
    const auto effects = cmpStudy(lab().runner(), lab().reference());
    const auto i7 = effectFor(effects, "i7 (45)");
    const auto i5 = effectFor(effects, "i5 (32)");
    EXPECT_GT(i7.average.perf, 1.2);
    EXPECT_GT(i5.average.perf, 1.2);
    // Native Non-scalable pays power for no performance on both.
    EXPECT_GT(i7.byGroup[0].energy, 1.0);
    EXPECT_GT(i5.byGroup[0].energy, 1.0);
}

// Workload Finding 1: the JVM induces parallelism into
// single-threaded Java benchmarks.
TEST(Findings, W1_JvmInducedParallelism)
{
    const auto scaling = javaSingleThreadedCmp(lab().runner());
    ASSERT_FALSE(scaling.empty());
    double sum = 0.0;
    for (const auto &[name, speedup] : scaling) {
        EXPECT_GE(speedup, 0.98) << name;
        sum += speedup;
    }
    const double avg = sum / scaling.size();
    EXPECT_GT(avg, 1.05);   // "about 10% faster on average"
    EXPECT_LT(avg, 1.35);
    EXPECT_GT(scaling.front().second, 1.4); // "up to 60% faster"
    EXPECT_LT(scaling.front().second, 1.75);
    EXPECT_EQ(scaling.front().first, "antlr");
}

// Architecture Finding 2: SMT delivers substantial energy savings
// on the i5 and Atom.
TEST(Findings, A2_SmtEnergySavings)
{
    const auto effects = smtStudy(lab().runner(), lab().reference());
    EXPECT_LT(effectFor(effects, "i5 (32)").average.energy, 0.95);
    EXPECT_LT(effectFor(effects, "Atom (45)").average.energy, 0.95);
    // The in-order Atom benefits most in performance.
    const double atomPerf =
        effectFor(effects, "Atom (45)").average.perf;
    EXPECT_GT(atomPerf,
              effectFor(effects, "Pentium4 (130)").average.perf);
}

// Workload Finding 2: on the Pentium 4, SMT degrades Java
// Non-scalable, giving an energy overhead.
TEST(Findings, W2_SmtHurtsJavaOnPentium4)
{
    const auto effects = smtStudy(lab().runner(), lab().reference());
    const auto p4 = effectFor(effects, "Pentium4 (130)");
    const size_t jn = static_cast<size_t>(Group::JavaNonScalable);
    EXPECT_GT(p4.byGroup[jn].energy, 1.0);
    // On the Pentium 4 there is no net energy advantage overall.
    EXPECT_GT(p4.average.energy, 0.95);
}

// Architecture Finding 3: the i5 does not increase energy as the
// clock increases, unlike the i7 and Core 2D.
TEST(Findings, A3_ClockScalingEnergy)
{
    const auto effects = clockStudy(lab().runner(), lab().reference());
    EXPECT_GT(effectFor(effects, "i7 (45)").average.energy, 1.3);
    EXPECT_GT(effectFor(effects, "C2D (45)").average.energy, 1.3);
    const double i5Energy =
        effectFor(effects, "i5 (32)").average.energy;
    EXPECT_GT(i5Energy, 0.85);
    EXPECT_LT(i5Energy, 1.1);
}

// Workload Finding 3: Native Non-scalable draws less power and its
// power rises less steeply with performance than other groups.
TEST(Findings, W3_NativeNonScalableIsThePowerOutlier)
{
    const auto agg = lab().aggregate(
        stockConfig(processorById("i7 (45)")));
    const auto &nn = agg.group(Group::NativeNonScalable);
    EXPECT_LT(nn.powerW, agg.group(Group::NativeScalable).powerW);
    EXPECT_LT(nn.powerW, agg.group(Group::JavaNonScalable).powerW);
    EXPECT_LT(nn.powerW, agg.group(Group::JavaScalable).powerW);
}

// Architecture Findings 4 and 5: die shrinks cut energy sharply at
// matched clocks, and 45nm->32nm repeated the 65nm->45nm gains.
TEST(Findings, A4_A5_DieShrinkEnergy)
{
    const auto matched =
        dieShrinkStudy(lab().runner(), lab().reference(), true);
    ASSERT_EQ(matched.size(), 2u);
    for (const auto &e : matched) {
        EXPECT_LT(e.average.power, 0.75) << e.label;
        EXPECT_LT(e.average.energy, 0.75) << e.label;
        // Matched clocks: no performance advantage (paper: 1.01 and
        // 0.90).
        EXPECT_NEAR(e.average.perf, 1.0, 0.12) << e.label;
    }
    // The two generations' energy gains are similar in magnitude.
    EXPECT_NEAR(matched[0].average.energy, matched[1].average.energy,
                0.2);
}

// Architecture Finding 6: Nehalem performs moderately better than
// Core controlling for parallelism and clock.
TEST(Findings, A6_NehalemOverCore)
{
    const auto effects = uarchStudy(lab().runner(), lab().reference());
    const auto i7c2d = effectFor(effects, "Core: i7 (45) / C2D (45)");
    EXPECT_GT(i7c2d.average.perf, 1.05);
    EXPECT_LT(i7c2d.average.perf, 1.45);
}

// Architecture Finding 7: controlling for technology, parallelism
// and clock, Nehalem's energy efficiency is similar to Core and
// Bonnell (no free lunch from microarchitecture alone).
TEST(Findings, A7_EnergyEfficiencyParityAt45nm)
{
    const auto effects = uarchStudy(lab().runner(), lab().reference());
    const double vsBonnell =
        effectFor(effects, "Bonnell: i7 (45) / AtomD (45)")
            .average.energy;
    const double vsCore =
        effectFor(effects, "Core: i7 (45) / C2D (45)").average.energy;
    EXPECT_NEAR(vsBonnell, 1.0, 0.25);
    EXPECT_NEAR(vsCore, 1.0, 0.25);
    // ...whereas three technology generations plus microarchitecture
    // yield an order of magnitude (i7 vs Pentium 4, paper: 0.13).
    const double vsNetburst =
        effectFor(effects, "NetBurst: i7 (45) / Pentium4 (130)")
            .average.energy;
    EXPECT_LT(vsNetburst, 0.25);
}

// Architecture Finding 8: Turbo Boost is not energy efficient on
// the i7; roughly energy-neutral on the i5.
TEST(Findings, A8_TurboBoostEnergy)
{
    const auto effects = turboStudy(lab().runner(), lab().reference());
    EXPECT_GT(effectFor(effects, "i7 (45) 4C2T").average.energy, 1.05);
    EXPECT_GT(effectFor(effects, "i7 (45) 1C1T").average.energy, 1.05);
    EXPECT_NEAR(effectFor(effects, "i5 (32) 2C2T").average.energy,
                1.0, 0.06);
    EXPECT_NEAR(effectFor(effects, "i5 (32) 1C1T").average.energy,
                1.0, 0.06);
}

// Architecture Finding 9: power per transistor is consistent within
// a microarchitecture family; the Pentium 4 is the outlier with the
// most power and performance per transistor.
TEST(Findings, A9_PowerPerTransistor)
{
    const auto points =
        historicalOverview(lab().runner(), lab().reference());
    double p4Power = 0.0, p4Perf = 0.0;
    double maxOtherPower = 0.0, maxOtherPerf = 0.0;
    for (const auto &pt : points) {
        if (pt.spec->family == Family::NetBurst) {
            p4Power = pt.powerPerMtran();
            p4Perf = pt.perfPerMtran();
        } else {
            maxOtherPower = std::max(maxOtherPower, pt.powerPerMtran());
            maxOtherPerf = std::max(maxOtherPerf, pt.perfPerMtran());
        }
    }
    EXPECT_GT(p4Power, 2.0 * maxOtherPower);
    EXPECT_GT(p4Perf, maxOtherPerf);
}

// Workload Finding 4: Pareto-efficient design is sensitive to
// workload — the per-group frontiers differ from each other.
TEST(Findings, W4_ParetoSensitiveToWorkload)
{
    auto &runner = lab().runner();
    const auto &ref = lab().reference();
    auto labelsOf = [&](std::optional<Group> group) {
        std::set<std::string> labels;
        for (const auto &pt : paretoFrontier45nm(runner, ref, group))
            labels.insert(pt.label);
        return labels;
    };
    const auto nn = labelsOf(Group::NativeNonScalable);
    const auto ns = labelsOf(Group::NativeScalable);
    const auto jn = labelsOf(Group::JavaNonScalable);
    EXPECT_NE(nn, ns);
    EXPECT_NE(nn, jn);
    EXPECT_NE(ns, jn);

    // All Native Non-scalable frontier picks at useful performance
    // are i7 configurations (contradicting the in-order prediction,
    // paper section 4.2).
    for (const auto &label : nn) {
        if (label.find("Atom") == std::string::npos) {
            EXPECT_NE(label.find("i7"), std::string::npos) << label;
        }
    }
}

// Figure 2 / TDP discussion: TDP is strictly above measured power
// and a poor predictor of it.
TEST(Findings, TdpOverstatesMeasuredPower)
{
    for (const auto &spec : allProcessors()) {
        const auto cfg = stockConfig(spec);
        double maxW = 0.0;
        for (const auto &bench : allBenchmarks())
            maxW = std::max(maxW,
                            lab().measure(cfg, bench).powerW);
        EXPECT_LT(maxW, spec.tdpW) << spec.id;
    }
}

// Figure 3: benchmark diversity on the i7 — at least 2.5x spread
// between the hungriest and the leanest benchmark.
TEST(Findings, BenchmarkPowerDiversityOnI7)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    double minW = 1e9, maxW = 0.0;
    for (const auto &bench : allBenchmarks()) {
        const double w = lab().measure(cfg, bench).powerW;
        minW = std::min(minW, w);
        maxW = std::max(maxW, w);
    }
    EXPECT_GT(maxW / minW, 2.0);
}

} // namespace lhr
