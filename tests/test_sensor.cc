/**
 * @file
 * Tests for the Hall-sensor measurement chain and its calibration
 * (paper section 2.5).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "stats/summary.hh"

namespace lhr
{

TEST(Sensor, SensitivitiesMatchDatasheet)
{
    EXPECT_DOUBLE_EQ(sensorSensitivity(SensorVariant::A5), 0.185);
    EXPECT_DOUBLE_EQ(sensorSensitivity(SensorVariant::A30), 0.066);
}

TEST(Sensor, ZeroCurrentNearMidRail)
{
    const PowerChannel channel(SensorVariant::A5, 1);
    Rng rng(2);
    Summary out;
    for (int i = 0; i < 200; ++i)
        out.add(channel.outputVolts(0.0, rng));
    EXPECT_NEAR(out.mean(), 2.5, 0.05);
}

TEST(Sensor, OutputScalesWithCurrent)
{
    const PowerChannel channel(SensorVariant::A5, 3);
    Rng rng(4);
    Summary low, high;
    for (int i = 0; i < 200; ++i) {
        low.add(channel.outputVolts(1.0, rng));
        high.add(channel.outputVolts(2.0, rng));
    }
    EXPECT_NEAR(high.mean() - low.mean(), 0.185, 0.01);
}

TEST(Sensor, QuantizeBounds)
{
    EXPECT_EQ(PowerChannel::quantize(-1.0), 0);
    EXPECT_EQ(PowerChannel::quantize(0.0), 0);
    EXPECT_EQ(PowerChannel::quantize(5.0), 1023);
    EXPECT_EQ(PowerChannel::quantize(99.0), 1023);
    EXPECT_EQ(PowerChannel::quantize(2.5), 512);
}

TEST(Sensor, RailAmps)
{
    EXPECT_DOUBLE_EQ(PowerChannel::railAmps(12.0), 1.0);
    EXPECT_DOUBLE_EQ(PowerChannel::railAmps(60.0), 5.0);
}

TEST(Sensor, NegativePowerPanics)
{
    const PowerChannel channel(SensorVariant::A5, 5);
    Rng rng(6);
    EXPECT_DEATH(channel.sampleCounts(-1.0, rng), "negative");
}

TEST(Calibration, FitQualityMeetsPaperGate)
{
    const PowerChannel channel(SensorVariant::A5, 7);
    Rng rng(8);
    const Calibration cal = Calibration::calibrate(channel, rng);
    EXPECT_GE(cal.r2(), Calibration::r2Gate);
}

TEST(Calibration, DecodesCurrentAccurately)
{
    const PowerChannel channel(SensorVariant::A5, 9);
    Rng calRng(10);
    const Calibration cal = Calibration::calibrate(channel, calRng);

    Rng rng(11);
    for (double amps : {0.5, 1.0, 1.5, 2.0, 2.5}) {
        Summary decoded;
        for (int i = 0; i < 100; ++i) {
            const int counts = PowerChannel::quantize(
                channel.outputVolts(amps, rng));
            decoded.add(cal.ampsFromCounts(counts));
        }
        // Calibration removes gain/offset error; residual error is
        // quantization plus noise, about 1% (section 2.5).
        EXPECT_NEAR(decoded.mean(), amps, 0.03 * amps + 0.01);
    }
}

TEST(Calibration, WattsRoundTrip)
{
    const PowerChannel channel(SensorVariant::A30, 12);
    Rng calRng(13);
    const Calibration cal = Calibration::calibrate(channel, calRng);

    Rng rng(14);
    Summary decoded;
    const double trueWatts = 60.0;
    for (int i = 0; i < 200; ++i)
        decoded.add(
            cal.wattsFromCounts(channel.sampleCounts(trueWatts, rng)));
    EXPECT_NEAR(decoded.mean(), trueWatts, 2.0);
}

TEST(Sensor, SaturatesBeyondRatedCurrent)
{
    // Past the rated range the Hall element compresses: equal
    // current steps produce smaller voltage steps.
    const PowerChannel channel(SensorVariant::A5, 21);
    Rng rng(22);
    Summary inRange, overRange;
    for (int i = 0; i < 400; ++i) {
        inRange.add(channel.outputVolts(4.5, rng) -
                    channel.outputVolts(3.5, rng));
        overRange.add(channel.outputVolts(7.0, rng) -
                      channel.outputVolts(6.0, rng));
    }
    EXPECT_GT(inRange.mean(), 3.0 * overRange.mean());
}

TEST(Sensor, FiveAmpPartUnderReadsI7ClassPower)
{
    // The methodological point of section 2.5: an 80W chip draws
    // ~6.7A, beyond the 5A part's range — it reads low, which is why
    // the i7's rig carries the 30A part.
    Rng calSeed(23);
    const PowerChannel small(SensorVariant::A5, 24);
    const PowerChannel big(SensorVariant::A30, 25);
    Rng rngA(26), rngB(26);
    Calibration calSmall = Calibration::calibrate(small, rngA);
    Calibration calBig = Calibration::calibrate(big, rngB);

    const double watts = 80.0;
    Summary readSmall, readBig;
    Rng noise(27);
    for (int i = 0; i < 300; ++i) {
        readSmall.add(
            calSmall.wattsFromCounts(small.sampleCounts(watts, noise)));
        readBig.add(
            calBig.wattsFromCounts(big.sampleCounts(watts, noise)));
    }
    EXPECT_LT(readSmall.mean(), 0.85 * watts); // saturated
    EXPECT_NEAR(readBig.mean(), watts, 0.05 * watts);
}

/** Property: every physical device calibrates within the gate. */
class SensorDeviceSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SensorDeviceSweep, CalibrationGateHolds)
{
    for (auto variant : {SensorVariant::A5, SensorVariant::A30}) {
        const PowerChannel channel(variant, GetParam());
        Rng rng(GetParam() ^ 0x5555);
        const Calibration cal = Calibration::calibrate(channel, rng);
        EXPECT_GE(cal.r2(), Calibration::r2Gate);
        // Slope must be positive (more counts = more current).
        EXPECT_GT(cal.fit().slope, 0.0);
    }
}

TEST_P(SensorDeviceSweep, MeasurementErrorAboutOnePercent)
{
    const PowerChannel channel(SensorVariant::A5, GetParam());
    Rng calRng(GetParam() ^ 0xAAAA);
    const Calibration cal = Calibration::calibrate(channel, calRng);
    Rng rng(GetParam() ^ 0x1234);
    const double watts = 25.0;
    Summary decoded;
    for (int i = 0; i < 500; ++i)
        decoded.add(
            cal.wattsFromCounts(channel.sampleCounts(watts, rng)));
    EXPECT_NEAR(decoded.mean(), watts, 0.02 * watts);
    EXPECT_LT(decoded.stddev() / watts, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Devices, SensorDeviceSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull,
                                           5ull, 6ull, 7ull, 8ull));

} // namespace lhr
