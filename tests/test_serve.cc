/**
 * @file
 * Tests for the lab-as-a-service layer: the bounded admission
 * queue, the framed local-socket transport, the wire protocol, and
 * the daemon's overload behaviour — backpressure without blocking,
 * deadline shedding, degraded cache serving, request coalescing,
 * typed errors for malformed frames, and a clean drain that never
 * truncates a reply.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "harness/runner.hh"
#include "serve/loadgen.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/bounded_queue.hh"
#include "util/json.hh"
#include "util/net.hh"

namespace lhr
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** A per-process, per-object unique socket path under /tmp. */
std::string
tempSocketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/lhr_serve_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A connected AF_UNIX pair, for transport tests without a daemon. */
void
socketPair(Socket &a, Socket &b)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
}

/**
 * A daemon running on a background thread, drained and joined on
 * destruction. Tests drive it through real client sockets.
 */
class TestDaemon
{
  public:
    explicit TestDaemon(ServeOptions options,
                        uint64_t seed = 0xC0FFEE)
        : runner(seed)
    {
        options.socketPath = path;
        options.stopFlag = &stop;
        server = std::make_unique<LabServer>(runner, options);
        thread = std::thread([this] { result = server->serve(); });
        // The listener needs a moment to bind; connect-retry until
        // it answers so tests are not racy on startup.
        for (int i = 0; i < 200; ++i) {
            Expected<Socket> probe = connectUnix(path);
            if (probe.ok())
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << "daemon never started listening";
    }

    ~TestDaemon()
    {
        drain();
        std::remove(path.c_str());
    }

    void drain()
    {
        stop.store(true);
        if (thread.joinable())
            thread.join();
    }

    [[nodiscard]] Socket connect()
    {
        Expected<Socket> sock = connectUnix(path);
        EXPECT_TRUE(sock.ok()) << sock.status().toString();
        return sock.ok() ? std::move(sock).value() : Socket();
    }

    ExperimentRunner runner;
    const std::string path = tempSocketPath();
    std::unique_ptr<LabServer> server;
    std::thread thread;
    std::atomic<bool> stop{false};
    Status result;
};

/** Send one request frame and read one reply frame. */
JsonValue
roundTrip(const Socket &sock, const std::string &body)
{
    const Status sent = writeFrame(sock, body);
    EXPECT_TRUE(sent.ok()) << sent.toString();
    Expected<std::string> reply = readFrame(sock, 1 << 20);
    EXPECT_TRUE(reply.ok()) << reply.status().toString();
    if (!reply.ok())
        return JsonValue();
    Expected<JsonValue> parsed = parseJson(reply.value());
    EXPECT_TRUE(parsed.ok()) << parsed.status().toString();
    return parsed.ok() ? parsed.value() : JsonValue();
}

ServeRequest
measureRequest(long id, const std::string &proc,
               const std::string &bench, double stall_ms = 0.0,
               double deadline_ms = 0.0)
{
    ServeRequest req;
    req.op = ServeOp::Measure;
    req.id = id;
    req.proc = proc;
    req.bench = bench;
    req.stallMs = stall_ms;
    req.deadlineMs = deadline_ms;
    return req;
}

} // namespace

// ---------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueue, TryPushOnFullQueueFailsWithoutBlocking)
{
    BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));

    const Clock::time_point before = Clock::now();
    EXPECT_FALSE(queue.tryPush(3));
    // Backpressure must be immediate: a full queue answers "no" in
    // microseconds, it never waits for a consumer.
    EXPECT_LT(msSince(before), 100.0);
    EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueue, PopDrainsAdmittedItemsAfterClose)
{
    BoundedQueue<int> queue(4);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    queue.close();

    EXPECT_FALSE(queue.tryPush(3)); // closed: no new admissions
    // ...but admitted items still drain, in order.
    EXPECT_EQ(queue.pop().value_or(-1), 1);
    EXPECT_EQ(queue.pop().value_or(-1), 2);
    EXPECT_FALSE(queue.pop().has_value()); // drained and closed
}

TEST(BoundedQueue, CloseWakesBlockedConsumers)
{
    BoundedQueue<int> queue(4);
    std::atomic<bool> woke{false};
    std::thread consumer([&queue, &woke] {
        EXPECT_FALSE(queue.pop().has_value());
        woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    consumer.join();
    EXPECT_TRUE(woke.load());
}

// ---------------------------------------------------------------
// Framed transport

TEST(Net, FrameRoundTripPreservesTheBody)
{
    Socket a, b;
    socketPair(a, b);
    const std::string body = "{\"op\":\"ping\"}";
    ASSERT_TRUE(writeFrame(a, body).ok());
    Expected<std::string> read = readFrame(b, 1 << 16);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    EXPECT_EQ(read.value(), body);
}

TEST(Net, EmptyAndBinaryBodiesSurvive)
{
    Socket a, b;
    socketPair(a, b);
    ASSERT_TRUE(writeFrame(a, "").ok());
    const std::string binary("\x00\xff\n\x01", 4);
    ASSERT_TRUE(writeFrame(a, binary).ok());
    EXPECT_EQ(readFrame(b, 16).value(), "");
    EXPECT_EQ(readFrame(b, 16).value(), binary);
}

TEST(Net, OversizedPrefixIsATypedRefusalNotAnAllocation)
{
    Socket a, b;
    socketPair(a, b);
    // A hostile 256 MiB length prefix against a 4 KiB cap.
    const char prefix[4] = {0x10, 0x00, 0x00, 0x00};
    ASSERT_EQ(::write(a.fd(), prefix, 4), 4);
    Expected<std::string> read = readFrame(b, 4096);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::InvalidArgument);
}

TEST(Net, EofAtFrameBoundaryIsDistinctFromMidFrame)
{
    {
        Socket a, b;
        socketPair(a, b);
        a.close(); // clean close before any frame
        Expected<std::string> read = readFrame(b, 16);
        ASSERT_FALSE(read.ok());
        EXPECT_EQ(read.status().code(), StatusCode::IoError);
        EXPECT_EQ(read.status().message(), "connection closed");
    }
    {
        Socket a, b;
        socketPair(a, b);
        const char partial[6] = {0, 0, 0, 16, 'h', 'i'};
        ASSERT_EQ(::write(a.fd(), partial, 6), 6);
        a.close(); // died mid-frame
        Expected<std::string> read = readFrame(b, 64);
        ASSERT_FALSE(read.ok());
        EXPECT_NE(read.status().message().find("mid-frame"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------
// Protocol

TEST(Protocol, ParsesAFullMeasureRequest)
{
    Expected<ServeRequest> parsed = parseServeRequest(
        "{\"id\": 7, \"op\": \"measure\", \"proc\": \"i7 (45)\","
        " \"bench\": \"mcf\", \"cores\": 2, \"smt\": false,"
        " \"clock\": 2.0, \"turbo\": false, \"deadline_ms\": 250,"
        " \"stall_ms\": 5}");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const ServeRequest &req = parsed.value();
    EXPECT_EQ(req.op, ServeOp::Measure);
    EXPECT_EQ(req.id, 7);
    EXPECT_EQ(req.proc, "i7 (45)");
    EXPECT_EQ(req.bench, "mcf");
    ASSERT_TRUE(req.cores.has_value());
    EXPECT_EQ(*req.cores, 2);
    ASSERT_TRUE(req.smt.has_value());
    EXPECT_FALSE(*req.smt);
    EXPECT_DOUBLE_EQ(req.deadlineMs, 250.0);
    EXPECT_DOUBLE_EQ(req.stallMs, 5.0);
}

TEST(Protocol, FormatParsesBackIdentically)
{
    const ServeRequest req =
        measureRequest(42, "i5 (32)", "gcc", 3.0, 100.0);
    Expected<ServeRequest> back =
        parseServeRequest(formatServeRequest(req));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().id, 42);
    EXPECT_EQ(back.value().proc, "i5 (32)");
    EXPECT_EQ(back.value().bench, "gcc");
    EXPECT_DOUBLE_EQ(back.value().stallMs, 3.0);
    EXPECT_DOUBLE_EQ(back.value().deadlineMs, 100.0);
}

TEST(Protocol, TypedErrorsForBadRequests)
{
    // Malformed JSON: a parse error.
    EXPECT_EQ(parseServeRequest("{nope").status().code(),
              StatusCode::ParseError);
    // Valid JSON, wrong shape: also a parse error.
    EXPECT_EQ(parseServeRequest("[1,2]").status().code(),
              StatusCode::ParseError);
    // Unknown op.
    EXPECT_EQ(parseServeRequest("{\"op\": \"teleport\"}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    // Wrongly typed field.
    EXPECT_EQ(parseServeRequest("{\"op\": \"measure\","
                                " \"proc\": \"i7 (45)\","
                                " \"bench\": \"mcf\","
                                " \"cores\": \"two\"}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    // Missing proc/bench on a measure.
    EXPECT_EQ(parseServeRequest("{\"op\": \"measure\"}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
    // stall_ms outside the abuse cap.
    EXPECT_EQ(parseServeRequest("{\"op\": \"measure\","
                                " \"proc\": \"i7 (45)\","
                                " \"bench\": \"mcf\","
                                " \"stall_ms\": 1e9}")
                  .status()
                  .code(),
              StatusCode::InvalidArgument);
}

TEST(Protocol, ResolveEnforcesTheMeasureContract)
{
    EXPECT_TRUE(
        resolveQuery(measureRequest(1, "i7 (45)", "mcf")).ok());

    EXPECT_FALSE(
        resolveQuery(measureRequest(1, "z80 (3000)", "mcf")).ok());
    EXPECT_FALSE(
        resolveQuery(measureRequest(1, "i7 (45)", "doom")).ok());

    ServeRequest req = measureRequest(1, "i7 (45)", "mcf");
    req.cores = 99;
    EXPECT_FALSE(resolveQuery(req).ok());

    req = measureRequest(1, "i7 (45)", "mcf");
    req.clockGhz = 9.9;
    EXPECT_FALSE(resolveQuery(req).ok());

    // Core 2 has neither SMT nor Turbo: asking for them is a typed
    // refusal, exactly like the CLI's.
    req = measureRequest(1, "C2D (45)", "mcf");
    req.smt = true;
    EXPECT_FALSE(resolveQuery(req).ok());
    req = measureRequest(1, "C2D (45)", "mcf");
    req.turbo = true;
    EXPECT_FALSE(resolveQuery(req).ok());
}

// ---------------------------------------------------------------
// Daemon behaviour

TEST(Serve, AnswersMeasurePingAndStats)
{
    ServeOptions options;
    options.workers = 2;
    options.queueDepth = 8;
    TestDaemon daemon(options);
    const Socket sock = daemon.connect();

    const JsonValue pong = roundTrip(sock, "{\"op\":\"ping\",\"id\":1}");
    EXPECT_EQ(pong.stringOr("status", ""), "ok");
    EXPECT_EQ(pong.numberOr("id", -1), 1.0);

    const JsonValue reply = roundTrip(
        sock, formatServeRequest(measureRequest(2, "i7 (45)", "mcf")));
    EXPECT_EQ(reply.stringOr("status", ""), "ok");
    EXPECT_EQ(reply.numberOr("id", -1), 2.0);
    EXPECT_GT(reply.numberOr("time_sec", 0.0), 0.0);
    EXPECT_GT(reply.numberOr("power_w", 0.0), 0.0);
    ASSERT_NE(reply.find("degraded"), nullptr);
    EXPECT_FALSE(reply.find("degraded")->asBoolean());

    // The served answer and a direct runner measurement must be the
    // same bits — the daemon is a cache front end, not a re-run.
    ExperimentRunner reference(0xC0FFEE);
    const Measurement &m = reference.measure(
        stockConfig(processorById("i7 (45)")), benchmarkByName("mcf"));
    EXPECT_NEAR(reply.numberOr("time_sec", 0.0), m.timeSec, 1e-6);

    const JsonValue stats =
        roundTrip(sock, "{\"op\":\"stats\",\"id\":3}");
    EXPECT_EQ(stats.stringOr("status", ""), "ok");
    ASSERT_NE(stats.find("stats"), nullptr);
    EXPECT_EQ(stats.find("stats")->numberOr("served", -1), 1.0);
}

TEST(Serve, QueueFullRepliesOverloadedImmediately)
{
    // One worker, a one-slot queue, and stalled jobs in front: the
    // daemon must answer `overloaded` for a cold key while the
    // worker is busy — without blocking the connection.
    ServeOptions options;
    options.workers = 1;
    options.queueDepth = 1;
    TestDaemon daemon(options);
    const Socket jammer = daemon.connect();

    // Occupy the worker, then the queue slot (cold keys, stalled).
    ASSERT_TRUE(writeFrame(jammer, formatServeRequest(measureRequest(
                                       1, "i7 (45)", "mcf", 300.0)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(writeFrame(jammer, formatServeRequest(measureRequest(
                                       2, "i7 (45)", "gcc", 300.0)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const Socket client = daemon.connect();
    const Clock::time_point before = Clock::now();
    const JsonValue reply = roundTrip(
        client,
        formatServeRequest(measureRequest(3, "i7 (45)", "bzip2")));
    const double elapsed_ms = msSince(before);
    EXPECT_EQ(reply.stringOr("status", ""), "overloaded");
    EXPECT_EQ(reply.numberOr("id", -1), 3.0);
    // The jammed work stalls ~600ms; a backpressure reply that fast
    // proves the daemon shed instead of waiting for a free slot.
    EXPECT_LT(elapsed_ms, 200.0);

    // Both jammed requests still complete (admitted work is never
    // lost to backpressure on later arrivals).
    EXPECT_EQ(readFrame(jammer, 1 << 16).ok(), true);
    EXPECT_EQ(readFrame(jammer, 1 << 16).ok(), true);
}

TEST(Serve, QueueFullServesWarmKeysDegraded)
{
    ServeOptions options;
    options.workers = 1;
    options.queueDepth = 1;
    TestDaemon daemon(options);
    const Socket sock = daemon.connect();

    // Warm the cache with one computed answer.
    const JsonValue warm = roundTrip(
        sock, formatServeRequest(measureRequest(1, "i7 (45)", "mcf")));
    ASSERT_EQ(warm.stringOr("status", ""), "ok");

    // Jam the worker and the queue with stalled cold keys.
    const Socket jammer = daemon.connect();
    ASSERT_TRUE(writeFrame(jammer, formatServeRequest(measureRequest(
                                       2, "i7 (45)", "gcc", 300.0)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(writeFrame(jammer, formatServeRequest(measureRequest(
                                       3, "i7 (45)", "hmmer", 300.0)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // The warm key answers instantly from cache, flagged degraded.
    const Clock::time_point before = Clock::now();
    const JsonValue reply = roundTrip(
        sock, formatServeRequest(measureRequest(4, "i7 (45)", "mcf")));
    EXPECT_EQ(reply.stringOr("status", ""), "ok");
    ASSERT_NE(reply.find("degraded"), nullptr);
    EXPECT_TRUE(reply.find("degraded")->asBoolean());
    EXPECT_NEAR(reply.numberOr("time_sec", -1.0),
                warm.numberOr("time_sec", -2.0), 1e-9);
    EXPECT_LT(msSince(before), 200.0);

    EXPECT_TRUE(readFrame(jammer, 1 << 16).ok());
    EXPECT_TRUE(readFrame(jammer, 1 << 16).ok());
}

TEST(Serve, ExpiredDeadlinesAreShedWithoutComputing)
{
    ServeOptions options;
    options.workers = 1;
    options.queueDepth = 4;
    TestDaemon daemon(options);
    const Socket sock = daemon.connect();

    // A stalled job occupies the single worker...
    ASSERT_TRUE(writeFrame(sock, formatServeRequest(measureRequest(
                                     1, "i7 (45)", "mcf", 200.0)))
                    .ok());
    // ...so this one expires in the queue (10ms deadline, 200ms of
    // stall ahead of it) and must be shed at dequeue, unrun.
    ASSERT_TRUE(writeFrame(sock,
                           formatServeRequest(measureRequest(
                               2, "i7 (45)", "gcc", 0.0, 10.0)))
                    .ok());

    Expected<std::string> first = readFrame(sock, 1 << 16);
    Expected<std::string> second = readFrame(sock, 1 << 16);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    const JsonValue shed = parseJson(second.value()).value();
    EXPECT_EQ(shed.stringOr("status", ""), "deadline-exceeded");
    EXPECT_EQ(shed.numberOr("id", -1), 2.0);

    // Shed means never computed: the runner holds only the stalled
    // request's key, and the daemon counted the shed.
    EXPECT_EQ(daemon.runner.cachedMeasurements(), 1u);
    EXPECT_EQ(daemon.server->statsSnapshot().deadlineShed, 1u);
}

TEST(Serve, ConcurrentIdenticalKeysComputeOnce)
{
    ServeOptions options;
    options.workers = 4;
    options.queueDepth = 16;
    TestDaemon daemon(options);

    // Eight concurrent clients ask for the same experiment with a
    // stall, so several workers hold the key at once.
    constexpr int clients = 8;
    std::vector<std::thread> threads;
    std::atomic<int> okCount{0};
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&daemon, &okCount, c] {
            const Socket sock = daemon.connect();
            const JsonValue reply = roundTrip(
                sock, formatServeRequest(measureRequest(
                          c, "i5 (32)", "mcf", 20.0)));
            if (reply.stringOr("status", "") == "ok")
                okCount.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Every client got a computed answer, from exactly ONE cache
    // miss: the memo's call_once coalesced the concurrent lookups.
    EXPECT_EQ(okCount.load(), clients);
    EXPECT_EQ(daemon.runner.cacheStats().misses, 1u);
    EXPECT_EQ(daemon.runner.cachedMeasurements(), 1u);
}

TEST(Serve, MalformedFramesGetTypedErrorsWithoutKillingTheDaemon)
{
    ServeOptions options;
    TestDaemon daemon(options);
    const Socket sock = daemon.connect();

    // Garbage JSON: typed parse-error reply, connection survives.
    const JsonValue garbage = roundTrip(sock, "this is not json");
    EXPECT_EQ(garbage.stringOr("status", ""), "parse-error");

    // Out-of-contract request: typed invalid-argument, still alive.
    const JsonValue bad = roundTrip(
        sock,
        formatServeRequest(measureRequest(5, "z80 (3000)", "mcf")));
    EXPECT_EQ(bad.stringOr("status", ""), "invalid-argument");

    // The same connection still serves real work.
    const JsonValue pong = roundTrip(sock, "{\"op\":\"ping\",\"id\":6}");
    EXPECT_EQ(pong.stringOr("status", ""), "ok");
}

TEST(Serve, OversizedFrameDropsTheConnectionButNotTheDaemon)
{
    ServeOptions options;
    options.maxFrameBytes = 4096;
    TestDaemon daemon(options);

    const Socket attacker = daemon.connect();
    // A 256 MiB length prefix: the daemon must refuse to allocate,
    // answer with a typed error, and drop only this connection.
    const char prefix[4] = {0x10, 0x00, 0x00, 0x00};
    ASSERT_EQ(::write(attacker.fd(), prefix, 4), 4);
    Expected<std::string> reply = readFrame(attacker, 1 << 16);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(parseJson(reply.value()).value().stringOr("status", ""),
              "parse-error");
    // The connection is then closed (unframeable stream)...
    EXPECT_FALSE(readFrame(attacker, 1 << 16).ok());

    // ...while the daemon keeps serving everyone else.
    const Socket client = daemon.connect();
    const JsonValue pong = roundTrip(client, "{\"op\":\"ping\"}");
    EXPECT_EQ(pong.stringOr("status", ""), "ok");
}

TEST(Serve, DrainFlushesAdmittedWorkWithoutTruncation)
{
    ServeOptions options;
    options.workers = 1;
    options.queueDepth = 8;
    TestDaemon daemon(options);
    const Socket sock = daemon.connect();

    // Pipeline four stalled requests; all four fit the queue.
    for (long id = 1; id <= 4; ++id) {
        ASSERT_TRUE(
            writeFrame(sock, formatServeRequest(measureRequest(
                                 id, "i7 (45)", "mcf", 30.0)))
                .ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(60));

    // Drain while they are in flight. Every admitted request must
    // still receive a complete, parseable reply.
    daemon.drain();
    EXPECT_TRUE(daemon.result.ok()) << daemon.result.toString();
    for (long id = 1; id <= 4; ++id) {
        Expected<std::string> reply = readFrame(sock, 1 << 16);
        ASSERT_TRUE(reply.ok())
            << "reply " << id << ": " << reply.status().toString();
        Expected<JsonValue> parsed = parseJson(reply.value());
        ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
        EXPECT_EQ(parsed.value().stringOr("status", ""), "ok");
        EXPECT_EQ(parsed.value().numberOr("id", -1),
                  static_cast<double>(id));
    }
    // After the flushed replies: a clean EOF, not a truncated frame.
    Expected<std::string> eof = readFrame(sock, 1 << 16);
    ASSERT_FALSE(eof.ok());
    EXPECT_EQ(eof.status().message(), "connection closed");
}

TEST(Serve, ShutdownOpDrainsTheDaemon)
{
    ServeOptions options;
    TestDaemon daemon(options);
    const Socket sock = daemon.connect();
    const JsonValue ack = roundTrip(sock, "{\"op\":\"shutdown\",\"id\":9}");
    EXPECT_EQ(ack.stringOr("status", ""), "ok");
    if (daemon.thread.joinable())
        daemon.thread.join();
    EXPECT_TRUE(daemon.result.ok()) << daemon.result.toString();
}

TEST(Serve, LoadgenReportsAnsweredRequestsAndPercentiles)
{
    ServeOptions options;
    options.workers = 2;
    options.queueDepth = 16;
    TestDaemon daemon(options);

    LoadgenOptions load;
    load.socketPath = daemon.path;
    load.clients = 4;
    load.requestsPerClient = 10;
    load.keys = 4;
    Expected<LoadgenReport> report = runLoadgen(load);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_EQ(report.value().ops, 40u);
    EXPECT_EQ(report.value().answered(), 40u);
    EXPECT_EQ(report.value().errorCount, 0u);
    EXPECT_GT(report.value().requestsPerSec, 0.0);
    EXPECT_LE(report.value().p50Ms, report.value().p95Ms);
    EXPECT_LE(report.value().p95Ms, report.value().p99Ms);
}

TEST(Serve, LoadgenAgainstNoDaemonIsOneTypedError)
{
    LoadgenOptions load;
    load.socketPath = tempSocketPath(); // nothing listens here
    load.clients = 2;
    load.requestsPerClient = 2;
    Expected<LoadgenReport> report = runLoadgen(load);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::IoError);
}

} // namespace lhr
