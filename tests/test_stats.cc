/**
 * @file
 * Tests for summary statistics, confidence intervals, linear fits,
 * and aggregation helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/linfit.hh"
#include "stats/summary.hh"
#include "util/rng.hh"

namespace lhr
{

TEST(Summary, MeanAndVariance)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyPanics)
{
    Summary s;
    EXPECT_DEATH(s.mean(), "empty");
    EXPECT_DEATH(s.min(), "empty");
    EXPECT_DEATH(s.max(), "empty");
}

TEST(Summary, SingleSampleHasZeroCi)
{
    Summary s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Summary, CiMatchesHandComputation)
{
    // Three samples: mean 10, sd 1; CI = t(2) * 1/sqrt(3).
    Summary s;
    s.add(9.0);
    s.add(10.0);
    s.add(11.0);
    EXPECT_NEAR(s.ci95(), 4.303 / std::sqrt(3.0), 1e-9);
    EXPECT_NEAR(s.ci95Relative(), s.ci95() / 10.0, 1e-12);
}

TEST(Summary, TCriticalTableValues)
{
    EXPECT_NEAR(tCritical95(1), 12.706, 1e-9);
    EXPECT_NEAR(tCritical95(2), 4.303, 1e-9);
    EXPECT_NEAR(tCritical95(19), 2.093, 1e-9);
    EXPECT_NEAR(tCritical95(30), 2.042, 1e-9);
    EXPECT_NEAR(tCritical95(45), 2.000, 1e-9);
    EXPECT_NEAR(tCritical95(200), 1.960, 1e-9);
    EXPECT_DEATH(tCritical95(0), "degrees");
}

TEST(Summary, CiShrinksWithMoreSamples)
{
    Rng rng(5);
    Summary small, large;
    for (int i = 0; i < 5; ++i)
        small.add(rng.gaussian(100.0, 5.0));
    Rng rng2(5);
    for (int i = 0; i < 500; ++i)
        large.add(rng2.gaussian(100.0, 5.0));
    EXPECT_LT(large.ci95(), small.ci95());
}

TEST(Summary, MeanOfAndGeomean)
{
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(geomeanOf({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomeanOf({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DEATH(meanOf({}), "empty");
    EXPECT_DEATH(geomeanOf({1.0, -1.0}), "positive");
}

TEST(LinearFit, RecoversExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.5 * i - 2.0);
    }
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 3.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.at(100.0), 348.0, 1e-9);
}

TEST(LinearFit, NoisyDataHasHighButImperfectR2)
{
    Rng rng(17);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + 1.0 + rng.gaussian(0.0, 3.0));
    }
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.05);
    EXPECT_GT(fit.r2, 0.99);
    EXPECT_LT(fit.r2, 1.0);
}

TEST(LinearFit, ConstantYIsPerfectFit)
{
    const LinearFit fit = fitLinear({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0});
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(LinearFit, DegenerateInputsPanic)
{
    EXPECT_DEATH(fitLinear({1.0}, {1.0}), "two points");
    EXPECT_DEATH(fitLinear({1.0, 2.0}, {1.0}), "mismatched");
    EXPECT_DEATH(fitLinear({2.0, 2.0}, {1.0, 3.0}), "identical");
}

/** Property: CI relative accuracy across sample sizes. */
class SummarySizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SummarySizeSweep, CiCoversTrueMeanUsually)
{
    // With 95% CIs, the true mean should be covered roughly 95% of
    // the time; require at least 85% over 200 trials to keep the
    // test robust.
    const int n = GetParam();
    Rng rng(4242 + n);
    int covered = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        Summary s;
        for (int i = 0; i < n; ++i)
            s.add(rng.gaussian(50.0, 7.0));
        if (std::fabs(s.mean() - 50.0) <= s.ci95())
            ++covered;
    }
    EXPECT_GE(covered, trials * 85 / 100);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, SummarySizeSweep,
                         ::testing::Values(3, 5, 10, 20, 50));

} // namespace lhr
