/**
 * @file
 * Whole-laboratory property sweep: physical and methodological
 * invariants checked on every one of the 45 experimental
 * configurations. These are the guarantees the analyses in
 * section 3 and 4 rest on.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/lab.hh"
#include "power/meters.hh"

namespace lhr
{

namespace
{

Lab &
lab()
{
    static Lab instance(0xCAFE);
    return instance;
}

/** Representative benchmarks spanning the four groups. */
const std::vector<const char *> probes = {
    "mcf", "hmmer", "fluidanimate", "streamcluster", "db", "antlr",
    "xalan", "sunflow",
};

} // namespace

class ConfigSweep : public ::testing::TestWithParam<MachineConfig>
{
};

TEST_P(ConfigSweep, MeasurementsArePhysical)
{
    const MachineConfig &cfg = GetParam();
    for (const char *name : probes) {
        const auto &m = lab().measure(cfg, benchmarkByName(name));
        ASSERT_GT(m.timeSec, 0.0) << name;
        ASSERT_GT(m.powerW, 0.3) << name;
        ASSERT_LT(m.powerW, cfg.spec->tdpW) << name;
        ASSERT_GE(m.timeCi95Rel, 0.0) << name;
        ASSERT_LT(m.timeCi95Rel, 0.10) << name;
        ASSERT_LT(m.powerCi95Rel, 0.20) << name;
        ASSERT_NEAR(m.energyJ(), m.timeSec * m.powerW, 1e-9) << name;
    }
}

TEST_P(ConfigSweep, ProfileAndMeasurementAgree)
{
    const MachineConfig &cfg = GetParam();
    for (const char *name : {"mcf", "xalan"}) {
        const auto &bench = benchmarkByName(name);
        const auto profile = lab().runner().profile(cfg, bench);
        const auto &m = lab().measure(cfg, bench);
        // Sensor + invocation noise stays within ~8%.
        ASSERT_NEAR(m.powerW, profile.power.total(),
                    0.08 * profile.power.total()) << name;
        // Java measurement includes warmup-iteration residue.
        const double slack =
            bench.language() == Language::Java ? 0.08 : 0.05;
        ASSERT_NEAR(m.timeSec, profile.timeSec,
                    slack * profile.timeSec) << name;
    }
}

TEST_P(ConfigSweep, PowerBreakdownIsConsistent)
{
    const MachineConfig &cfg = GetParam();
    const auto profile =
        lab().runner().profile(cfg, benchmarkByName("fluidanimate"));
    const auto &pb = profile.power;
    ASSERT_GT(pb.coreDynW, 0.0);
    ASSERT_GT(pb.leakW, 0.0);
    ASSERT_GE(pb.llcW, 0.0);
    ASSERT_GT(pb.uncoreW, 0.0);
    ASSERT_NEAR(pb.total(),
                pb.coreDynW + pb.leakW + pb.llcW + pb.uncoreW, 1e-9);
    ASSERT_GT(pb.junctionC, 40.0);
    ASSERT_LT(pb.junctionC, 100.0);
}

TEST_P(ConfigSweep, MetersMatchHallSensor)
{
    const MachineConfig &cfg = GetParam();
    const auto &bench = benchmarkByName("xalan");
    double duration = 0.0;
    const auto meters = lab().runner().meterRun(cfg, bench, &duration);
    const double meterW =
        meters.energyJ(MeterDomain::Package) / duration;
    const double hallW = lab().measure(cfg, bench).powerW;
    ASSERT_NEAR(hallW, meterW, 0.08 * meterW);
    // Domain conservation holds everywhere.
    const double parts = meters.energyJ(MeterDomain::Cores) +
        meters.energyJ(MeterDomain::Llc) +
        meters.energyJ(MeterDomain::Uncore);
    ASSERT_NEAR(meters.energyJ(MeterDomain::Package), parts,
                0.001 * parts + 1e-3);
}

TEST_P(ConfigSweep, GrantedClockIsLegal)
{
    const MachineConfig &cfg = GetParam();
    for (const char *name : {"hmmer", "fluidanimate"}) {
        const auto profile =
            lab().runner().profile(cfg, benchmarkByName(name));
        ASSERT_GE(profile.grantedClockGhz, cfg.clockGhz - 1e-9);
        const double maxBoost = cfg.spec->hasTurbo && cfg.turboEnabled
            ? 2.0 * cfg.spec->turboStepGhz : 0.0;
        ASSERT_LE(profile.grantedClockGhz,
                  cfg.clockGhz + maxBoost + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    All45, ConfigSweep, ::testing::ValuesIn(standardConfigurations()),
    [](const ::testing::TestParamInfo<MachineConfig> &info) {
        std::string name = info.param.label();
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name + "_" + std::to_string(info.index);
    });

} // namespace lhr
