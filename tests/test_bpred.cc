/**
 * @file
 * Tests for the branch predictor simulators.
 */

#include <gtest/gtest.h>

#include "bpred/predictor.hh"
#include "util/rng.hh"

namespace lhr
{

TEST(Bimodal, LearnsAStrongBias)
{
    BimodalPredictor pred(10);
    const uint64_t pc = 0x400100;
    for (int i = 0; i < 100; ++i)
        pred.run(pc, true);
    // After warmup the always-taken branch is always predicted.
    EXPECT_TRUE(pred.predict(pc));
    EXPECT_LE(pred.mispredictions(), 2u);
}

TEST(Bimodal, LearnsNotTaken)
{
    BimodalPredictor pred(10);
    const uint64_t pc = 0x400200;
    for (int i = 0; i < 100; ++i)
        pred.run(pc, false);
    EXPECT_FALSE(pred.predict(pc));
    EXPECT_LE(pred.mispredictions(), 3u);
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor pred(10);
    const uint64_t pc = 0x400300;
    for (int i = 0; i < 10; ++i)
        pred.run(pc, true);
    pred.run(pc, false); // single anomaly
    EXPECT_TRUE(pred.predict(pc)); // 2-bit counter holds
}

TEST(Bimodal, BiasedBranchRateMatchesTheory)
{
    // Stationary misprediction rate of a 2-bit counter on a
    // Bernoulli(0.7) branch is ~0.36.
    BimodalPredictor pred(12);
    Rng rng(9);
    const uint64_t pc = 0x400400;
    for (int i = 0; i < 200000; ++i)
        pred.run(pc, rng.uniform() < 0.7);
    EXPECT_NEAR(pred.mispredictRatio(), 0.36, 0.03);
}

TEST(Bimodal, RandomBranchNearHalf)
{
    BimodalPredictor pred(12);
    Rng rng(10);
    for (int i = 0; i < 100000; ++i)
        pred.run(0x400500, rng.uniform() < 0.5);
    EXPECT_NEAR(pred.mispredictRatio(), 0.5, 0.03);
}

TEST(Gshare, LearnsPatternsThatDefeatBimodal)
{
    // A strictly alternating branch: bimodal stays ~50% wrong in its
    // weak states; gshare's history disambiguates perfectly.
    GsharePredictor gshare(12);
    BimodalPredictor bimodal(12);
    const uint64_t pc = 0x400600;
    for (int i = 0; i < 10000; ++i) {
        const bool taken = (i % 2) == 0;
        gshare.run(pc, taken);
        bimodal.run(pc, taken);
    }
    EXPECT_LT(gshare.mispredictRatio(), 0.02);
    EXPECT_GT(bimodal.mispredictRatio(), 0.3);
}

TEST(Gshare, PeriodicPattern)
{
    GsharePredictor gshare(12);
    const uint64_t pc = 0x400700;
    // Loop-like TTTN pattern.
    for (int i = 0; i < 20000; ++i)
        gshare.run(pc, (i % 4) != 3);
    EXPECT_LT(gshare.mispredictRatio(), 0.05);
}

TEST(Predictors, TableSizeValidation)
{
    EXPECT_DEATH(BimodalPredictor(0), "table");
    EXPECT_DEATH(GsharePredictor(30), "table");
}

TEST(Predictors, CountsAreConsistent)
{
    BimodalPredictor pred(8);
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        pred.run(0x400000 + 16 * rng.below(8), rng.uniform() < 0.8);
    EXPECT_EQ(pred.branches(), 1000u);
    EXPECT_LE(pred.mispredictions(), pred.branches());
}

} // namespace lhr
