/**
 * @file
 * Tests for the workload phase model and the phase-power series it
 * drives.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "stats/summary.hh"
#include "workload/phases.hh"

namespace lhr
{

TEST(Phases, MeansAreCentredOnOne)
{
    for (const char *name : {"gcc", "xalan", "fluidanimate"}) {
        PhaseModel model(benchmarkByName(name), 5);
        const auto points = model.generate(256);
        Summary act, mem;
        for (const auto &pt : points) {
            act.add(pt.activityMult);
            mem.add(pt.memoryMult);
        }
        EXPECT_NEAR(act.mean(), 1.0, 1e-9) << name;
        EXPECT_NEAR(mem.mean(), 1.0, 1e-9) << name;
    }
}

TEST(Phases, AmplitudeTracksVariability)
{
    // gcc (phase-rich, 0.15) swings more than lbm (flat, 0.02).
    PhaseModel rich(benchmarkByName("gcc"), 6);
    PhaseModel flat(benchmarkByName("lbm"), 6);
    Summary richAct, flatAct;
    for (const auto &pt : rich.generate(512))
        richAct.add(pt.activityMult);
    for (const auto &pt : flat.generate(512))
        flatAct.add(pt.activityMult);
    EXPECT_GT(richAct.stddev(), 2.0 * flatAct.stddev());
}

TEST(Phases, JavaHasGcBursts)
{
    PhaseModel java(benchmarkByName("xalan"), 7);
    const auto points = java.generate(PhaseModel::gcPeriodPhases * 8);
    int bursts = 0;
    for (const auto &pt : points)
        if (pt.gcBurst)
            ++bursts;
    EXPECT_NEAR(bursts, 8, 2);

    PhaseModel native(benchmarkByName("gcc"), 7);
    for (const auto &pt : native.generate(128))
        EXPECT_FALSE(pt.gcBurst);
}

TEST(Phases, GcBurstsAreMemoryHeavy)
{
    PhaseModel java(benchmarkByName("pjbb2005"), 8);
    const auto points = java.generate(512);
    Summary gcMem, appMem;
    for (const auto &pt : points)
        (pt.gcBurst ? gcMem : appMem).add(pt.memoryMult);
    ASSERT_GT(gcMem.count(), 0u);
    EXPECT_GT(gcMem.mean(), 1.2 * appMem.mean());
}

TEST(Phases, DeterministicPerSeed)
{
    PhaseModel a(benchmarkByName("gcc"), 11);
    PhaseModel b(benchmarkByName("gcc"), 11);
    const auto pa = a.generate(64);
    const auto pb = b.generate(64);
    for (size_t i = 0; i < pa.size(); ++i)
        ASSERT_DOUBLE_EQ(pa[i].activityMult, pb[i].activityMult);
    EXPECT_DEATH(a.generate(0), "at least one");
}

TEST(Phases, SeriesFeedsThePowerTrace)
{
    ExperimentRunner runner(0x9999);
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &bench = benchmarkByName("pjbb2005");
    const auto series = runner.phasePowerSeries(cfg, bench);
    ASSERT_EQ(series.size(),
              static_cast<size_t>(ExperimentRunner::powerPhases));

    // The series' average must agree with the profile's nominal
    // power (phases cannot bias the mean), and Java's GC bursts must
    // make it visibly non-flat.
    Summary watts;
    for (const auto &pb : series)
        watts.add(pb.total());
    const auto profile = runner.profile(cfg, bench);
    EXPECT_NEAR(watts.mean(), profile.power.total(),
                0.05 * profile.power.total());
    EXPECT_GT(watts.max() - watts.min(), 1.0);
}

TEST(Phases, SeriesIsDeterministicAndMatchesMeters)
{
    ExperimentRunner runner(0xABAB);
    const auto cfg = stockConfig(processorById("i5 (32)"));
    const auto &bench = benchmarkByName("xalan");
    const auto a = runner.phasePowerSeries(cfg, bench);
    const auto b = runner.phasePowerSeries(cfg, bench);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i].total(), b[i].total());

    // Integrating the series reproduces the meters' package energy.
    double duration = 0.0;
    const auto meters = runner.meterRun(cfg, bench, &duration);
    double joules = 0.0;
    for (const auto &pb : a)
        joules += pb.total() * duration / a.size();
    EXPECT_NEAR(meters.energyJ(MeterDomain::Package), joules,
                0.01 * joules);
}

} // namespace lhr
