/**
 * @file
 * Tests for the fault-injection rig and the hardened measurement
 * pipeline: injector determinism, the logger's fault semantics, the
 * byte-identity guarantee of an empty plan, poisoned configurations,
 * and the recovery path against an injected fault the raw pipeline
 * cannot survive.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hh"
#include "harness/runner.hh"
#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "sensor/trace_log.hh"
#include "util/status.hh"

namespace lhr
{

namespace
{

/** Bitwise equality of the paper-facing measurement fields. */
bool
identical(const Measurement &a, const Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations;
}

/** Equality of the fault fields the Hall-era classes drive. */
bool
samePaperFault(const SampleFault &a, const SampleFault &b)
{
    return a.lost == b.lost && a.railed == b.railed &&
        a.extraCopies == b.extraCopies &&
        a.powerScale == b.powerScale && a.countsGain == b.countsGain;
}

bool
sameFault(const SampleFault &a, const SampleFault &b)
{
    return samePaperFault(a, b) && a.wrapGlitch == b.wrapGlitch &&
        a.stale == b.stale;
}

} // namespace

TEST(FaultPlan, NamesRoundTrip)
{
    for (const FaultClass cls : allFaultClasses()) {
        const auto parsed = parseFaultClass(faultClassName(cls));
        ASSERT_TRUE(parsed.has_value()) << faultClassName(cls);
        EXPECT_EQ(*parsed, cls);
    }
    EXPECT_FALSE(parseFaultClass("cosmic-ray").has_value());
    EXPECT_FALSE(parseFaultClass("").has_value());
}

TEST(FaultPlan, DefaultInjectsNothing)
{
    const FaultPlan plan;
    EXPECT_FALSE(plan.any());
    EXPECT_FALSE(plan.injectsSamples());
    for (const FaultClass cls : allFaultClasses())
        EXPECT_EQ(plan.rate(cls), 0.0);
}

TEST(FaultPlan, WithSetsRateAndValidates)
{
    FaultPlan plan;
    plan.with(FaultClass::DroppedSample, 0.25)
        .with(FaultClass::ThermalThrottle, 1.0);
    EXPECT_DOUBLE_EQ(plan.rate(FaultClass::DroppedSample), 0.25);
    EXPECT_DOUBLE_EQ(plan.rate(FaultClass::ThermalThrottle), 1.0);
    EXPECT_TRUE(plan.injectsSamples());
    EXPECT_TRUE(plan.any());

    EXPECT_DEATH(plan.with(FaultClass::DroppedSample, 1.5), "0, 1");
    EXPECT_DEATH(plan.with(FaultClass::DroppedSample, -0.1), "0, 1");
}

TEST(FaultPlan, PoisonedConfigAloneInjectsNoSamples)
{
    FaultPlan plan;
    plan.poisonedConfig = "some rig";
    EXPECT_TRUE(plan.any());
    EXPECT_FALSE(plan.injectsSamples());
}

TEST(FaultInjector, StreamIsAPureFunctionOfItsKey)
{
    FaultPlan plan;
    plan.seed = 0xABCD;
    for (const FaultClass cls : allFaultClasses())
        plan.with(cls, 0.2);

    constexpr int samples = 400;
    FaultInjector a(plan, 0x1111, 2, samples);
    FaultInjector b(plan, 0x1111, 2, samples);
    FaultInjector otherSession(plan, 0x1111, 3, samples);
    FaultInjector otherExperiment(plan, 0x2222, 2, samples);

    bool sessionDiffers = false, experimentDiffers = false;
    for (int i = 0; i < samples; ++i) {
        const SampleFault fa = a.next();
        EXPECT_TRUE(sameFault(fa, b.next())) << "sample " << i;
        sessionDiffers |= !sameFault(fa, otherSession.next());
        experimentDiffers |= !sameFault(fa, otherExperiment.next());
    }
    EXPECT_EQ(a.sampleIndex(), samples);
    EXPECT_TRUE(sessionDiffers);
    EXPECT_TRUE(experimentDiffers);
}

TEST(FaultInjector, RaplRatesLeaveTheOriginalStreamsUntouched)
{
    // The counter classes draw from a separate auxiliary stream, so
    // enabling them must not shift a single decision of the seven
    // Hall-era classes — existing fault studies stay reproducible.
    FaultPlan base;
    base.seed = 0xABCD;
    for (const FaultClass cls : allFaultClasses())
        if (cls != FaultClass::CounterWraparound &&
            cls != FaultClass::StaleCounter)
            base.with(cls, 0.2);
    FaultPlan withRapl = base;
    withRapl.with(FaultClass::CounterWraparound, 0.5)
        .with(FaultClass::StaleCounter, 0.5);

    constexpr int samples = 400;
    FaultInjector a(base, 0x1111, 2, samples);
    FaultInjector b(withRapl, 0x1111, 2, samples);
    bool sawWrap = false, sawStale = false;
    for (int i = 0; i < samples; ++i) {
        const SampleFault fa = a.next();
        const SampleFault fb = b.next();
        EXPECT_TRUE(samePaperFault(fa, fb)) << "sample " << i;
        EXPECT_FALSE(fa.wrapGlitch);
        EXPECT_FALSE(fa.stale);
        sawWrap |= fb.wrapGlitch;
        sawStale |= fb.stale;
    }
    EXPECT_TRUE(sawWrap);
    EXPECT_TRUE(sawStale);
}

TEST(FaultInjector, StaleBurstsChainAcrossSlots)
{
    // A rate-1.0 stale plan starts a burst on the first slot and
    // chains: every slot of the session re-reads the old counter.
    FaultPlan plan;
    plan.with(FaultClass::StaleCounter, 1.0);
    FaultInjector injector(plan, 0x5EED, 0, 64);
    for (int i = 0; i < 64; ++i)
        EXPECT_TRUE(injector.next().stale) << "sample " << i;
}

TEST(FaultInjector, ZeroRatesYieldCleanSamples)
{
    const FaultPlan plan; // all rates zero
    FaultInjector injector(plan, 0xFEED, 0, 256);
    for (int i = 0; i < 256; ++i) {
        const SampleFault fault = injector.next();
        EXPECT_FALSE(fault.lost);
        EXPECT_FALSE(fault.railed);
        EXPECT_EQ(fault.extraCopies, 0);
        EXPECT_DOUBLE_EQ(fault.powerScale, 1.0);
        EXPECT_DOUBLE_EQ(fault.countsGain, 1.0);
        EXPECT_FALSE(fault.wrapGlitch);
        EXPECT_FALSE(fault.stale);
    }
}

TEST(FaultInjector, DisconnectLosesEveryLaterSample)
{
    FaultPlan plan;
    plan.with(FaultClass::LoggerDisconnect, 1.0);
    constexpr int samples = 300;
    FaultInjector injector(plan, 0x5EED, 0, samples);
    int firstLost = -1;
    for (int i = 0; i < samples; ++i) {
        const bool lost = injector.next().lost;
        if (lost && firstLost < 0)
            firstLost = i;
        if (firstLost >= 0)
            EXPECT_TRUE(lost) << "sample " << i;
    }
    // The cut lands in the middle half of the session.
    ASSERT_GE(firstLost, samples / 4);
    ASSERT_LE(firstLost, 3 * samples / 4);
}

TEST(TraceLog, FaultedSamplingCountsAndLogs)
{
    const PowerChannel channel(SensorVariant::A30, 0x714);
    Rng calRng(0xCAFE);
    const Calibration calib =
        Calibration::calibrate(channel, calRng);
    PowerTraceLogger logger(channel, calib);
    Rng rng(0xD00D);

    SampleFault clean;
    logger.sampleFaulted(0.00, 40.0, rng, clean);

    SampleFault lost;
    lost.lost = true;
    logger.sampleFaulted(0.02, 40.0, rng, lost);

    SampleFault duplicated;
    duplicated.extraCopies = 2;
    logger.sampleFaulted(0.04, 40.0, rng, duplicated);

    SampleFault railed;
    railed.railed = true;
    logger.sampleFaulted(0.06, 40.0, rng, railed);

    // 1 clean + (1 + 2 copies) + 1 railed; the lost slot is counted
    // but never logged.
    EXPECT_EQ(logger.count(), 5u);
    EXPECT_EQ(logger.lostSamples(), 1u);
    EXPECT_EQ(logger.duplicatedSamples(), 2u);

    const auto &log = logger.samples();
    // Duplicates repeat the slot's timestamp (how recovery spots them).
    EXPECT_DOUBLE_EQ(log[1].timeSec, 0.04);
    EXPECT_DOUBLE_EQ(log[2].timeSec, 0.04);
    EXPECT_DOUBLE_EQ(log[3].timeSec, 0.04);
    EXPECT_EQ(log[1].counts, log[2].counts);
    // The railed slot reads exactly the channel's rail code, far
    // above any honest 40W reading.
    EXPECT_EQ(log[4].counts, channel.railHighCounts());
    EXPECT_GT(log[4].counts, log[0].counts);

    logger.clear();
    EXPECT_EQ(logger.count(), 0u);
    EXPECT_EQ(logger.lostSamples(), 0u);
    EXPECT_EQ(logger.duplicatedSamples(), 0u);
}

TEST(RailCodes, BracketTheHonestRange)
{
    const PowerChannel channel(SensorVariant::A30, 0x714);
    EXPECT_GT(channel.railHighCounts(), channel.railLowCounts());
    // The ideal zero-current code sits between the rails.
    const int zero = PowerChannel::quantize(PowerChannel::zeroCurrentVolts);
    EXPECT_GT(channel.railHighCounts(), zero);
    EXPECT_LT(channel.railLowCounts(), zero);
    EXPECT_LT(channel.railHighCounts(), PowerChannel::adcCounts);
    EXPECT_GE(channel.railLowCounts(), 0);
}

TEST(Runner, EmptyPlanIsBitIdenticalToTheCleanPath)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &bench = benchmarkByName("mcf");
    const auto &java = benchmarkByName("db");

    ExperimentRunner plain(0xBEEF);
    ExperimentRunner planned(0xBEEF);
    planned.setFaultPlan(FaultPlan{}); // all-zero: must change nothing
    MeasurementPolicy policy;          // defaults, harden on
    planned.setMeasurementPolicy(policy);

    EXPECT_TRUE(identical(plain.measure(cfg, bench),
                          planned.measure(cfg, bench)));
    EXPECT_TRUE(identical(plain.measure(cfg, java),
                          planned.measure(cfg, java)));
}

TEST(Runner, FaultPlanMustBeInstalledBeforeMeasuring)
{
    ExperimentRunner runner(0xBEEF);
    runner.measure(stockConfig(processorById("Atom (45)")),
                   benchmarkByName("mcf"));
    FaultPlan plan;
    plan.with(FaultClass::DroppedSample, 0.1);
    EXPECT_DEATH(runner.setFaultPlan(plan), "cached");
    EXPECT_DEATH(runner.setMeasurementPolicy(MeasurementPolicy{}),
                 "cached");
}

TEST(Runner, PoisonedConfigThrowsTypedFaultError)
{
    const auto poisoned = stockConfig(processorById("i7 (45)"));
    const auto healthy = stockConfig(processorById("Atom (45)"));
    const auto &bench = benchmarkByName("mcf");

    ExperimentRunner runner(0xBEEF);
    FaultPlan plan;
    plan.poisonedConfig = poisoned.label();
    runner.setFaultPlan(plan);

    try {
        runner.measure(poisoned, bench);
        FAIL() << "poisoned configuration measured successfully";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::FaultDetected);
        EXPECT_NE(e.status().message().find(poisoned.label()),
                  std::string::npos);
    }

    // Other configurations are untouched — and bit-identical to a
    // plan-free runner, since a poison-only plan injects no samples.
    ExperimentRunner plain(0xBEEF);
    EXPECT_TRUE(identical(runner.measure(healthy, bench),
                          plain.measure(healthy, bench)));
}

TEST(Runner, HardenedPipelineRecoversFromSaturation)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &bench = benchmarkByName("mcf");

    ExperimentRunner clean(0xBEEF);
    const Measurement &truth = clean.measure(cfg, bench);

    FaultPlan plan;
    plan.seed = 0xBEEF;
    plan.with(FaultClass::SensorSaturation, 0.02);

    ExperimentRunner rawRunner(0xBEEF);
    rawRunner.setFaultPlan(plan);
    MeasurementPolicy raw;
    raw.harden = false;
    rawRunner.setMeasurementPolicy(raw);
    const Measurement &rawM = rawRunner.measure(cfg, bench);

    ExperimentRunner recRunner(0xBEEF);
    recRunner.setFaultPlan(plan);
    const Measurement &recM = recRunner.measure(cfg, bench);

    // Railed codes decode far above the real draw: the raw mean is
    // badly biased, the recovered mean is back near the truth.
    EXPECT_GT(rawM.powerW, truth.powerW * 1.10);
    EXPECT_NEAR(recM.powerW, truth.powerW, truth.powerW * 0.03);
    EXPECT_GT(recM.samplesRailed, 0);
    EXPECT_FALSE(recM.degraded);

    // Faulted measurements are deterministic: a second runner with
    // the same seed and plan reproduces both bit for bit.
    ExperimentRunner rawAgain(0xBEEF);
    rawAgain.setFaultPlan(plan);
    rawAgain.setMeasurementPolicy(raw);
    EXPECT_TRUE(identical(rawAgain.measure(cfg, bench), rawM));
    ExperimentRunner recAgain(0xBEEF);
    recAgain.setFaultPlan(plan);
    EXPECT_TRUE(identical(recAgain.measure(cfg, bench), recM));
}

TEST(Runner, DeadRigDegradesToFaultErrorNotAHang)
{
    // Rate-1.0 disconnects kill every session; retries and the CI
    // gate are capped, so the pipeline must give up with a typed
    // error rather than loop or fabricate a number.
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &bench = benchmarkByName("mcf");

    FaultPlan plan;
    plan.seed = 1;
    plan.with(FaultClass::LoggerDisconnect, 1.0)
        .with(FaultClass::DroppedSample, 0.9);

    ExperimentRunner runner(0xBEEF);
    runner.setFaultPlan(plan);
    MeasurementPolicy policy;
    policy.minSampleFraction = 0.9; // nothing survives this gate
    runner.setMeasurementPolicy(policy);

    EXPECT_THROW(runner.measure(cfg, bench), FaultError);
}

} // namespace lhr
