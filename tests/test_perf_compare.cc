/**
 * @file
 * Tests for the CI perf regression gate: the JSON value parser, the
 * baseline-record parser, the noise-aware comparison logic (spread
 * widening, direction classification), the markdown A/B table, and
 * the real bench_compare binary (path baked in by CMake as
 * LHR_BENCH_COMPARE_BIN) — including the required demonstration that
 * an intentionally slowed run fires the gate.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include "analysis/perf_compare.hh"
#include "util/json.hh"

namespace lhr
{

namespace
{

struct CliResult
{
    int exitCode = -1;
    std::string output; ///< stdout and stderr, interleaved
};

CliResult
runGate(const std::string &args)
{
    const std::string cmd =
        std::string(LHR_BENCH_COMPARE_BIN) + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    CliResult result;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        result.output.append(buf, n);
    const int status = pclose(pipe);
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

bool
mentions(const CliResult &r, const std::string &needle)
{
    return r.output.find(needle) != std::string::npos;
}

/** Write a fixture under gtest's temp dir, return its path. */
std::string
writeFile(const std::string &name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream os(path, std::ios::trunc);
    os << text;
    EXPECT_TRUE(os.good()) << path;
    return path;
}

/** A one-record baseline with the given throughput and spread. */
std::string
baseline(double perSec, double spreadRel)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "[{\"name\": \"sweep_serial\", \"metrics\": "
        "{\"experiments_per_sec\": %.1f, "
        "\"experiments_per_sec_spread_rel\": %.4f}, "
        "\"wall_sec\": 1.0}]",
        perSec, spreadRel);
    return buf;
}

} // namespace

TEST(Json, ParsesScalarsContainersAndEscapes)
{
    const auto doc = parseJson(
        " { \"a\": [1, -2.5e2, true, false, null], "
        "\"s\": \"q\\u00e9\\n\\\"\", \"o\": {\"k\": 3} } ");
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &root = doc.value();
    ASSERT_TRUE(root.isObject());
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->size(), 5u);
    EXPECT_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_EQ(a->items()[1].asNumber(), -250.0);
    EXPECT_TRUE(a->items()[2].asBoolean());
    EXPECT_FALSE(a->items()[3].asBoolean());
    EXPECT_TRUE(a->items()[4].isNull());
    const JsonValue *s = root.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->asString(), "q\xc3\xa9\n\"");
    const JsonValue *o = root.find("o");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->numberOr("k", 0.0), 3.0);
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedDocumentsWithPosition)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{\"a\": }").ok());
    EXPECT_FALSE(parseJson("[1, 2").ok());
    EXPECT_FALSE(parseJson("[1] trailing").ok());
    EXPECT_FALSE(parseJson("{\"a\": 01}").ok());
    EXPECT_FALSE(parseJson("\"\\u12\"").ok());

    const auto err = parseJson("{\n  \"a\": nope\n}");
    ASSERT_FALSE(err.ok());
    EXPECT_NE(err.status().message().find("line 2"),
              std::string::npos)
        << err.status().toString();
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_FALSE(parseJson(deep).ok());
}

TEST(PerfCompare, ParsesRecordsAndFlattensMetrics)
{
    const auto records = parsePerfRecords(
        "[{\"name\": \"r\", \"config\": {\"grid\": \"full\"}, "
        "\"metrics\": {\"experiments_per_sec\": 100.0, "
        "\"note\": \"skipped\"}, \"wall_sec\": 2.5}]");
    ASSERT_TRUE(records.ok()) << records.status().toString();
    ASSERT_EQ(records.value().size(), 1u);
    const PerfRecord &r = records.value()[0];
    EXPECT_EQ(r.name, "r");
    EXPECT_EQ(r.metricOr("experiments_per_sec", 0.0), 100.0);
    EXPECT_EQ(r.metricOr("wall_sec", 0.0), 2.5);
    EXPECT_FALSE(r.hasMetric("note"));

    EXPECT_FALSE(parsePerfRecords("{}").ok());
    EXPECT_FALSE(parsePerfRecords("[{\"metrics\": {}}]").ok());
}

TEST(PerfCompare, OnlyThroughputMetricsGate)
{
    EXPECT_EQ(metricDirection("experiments_per_sec"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("samples_per_sec"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("experiments_per_sec_spread_rel"),
              MetricDirection::Informational);
    EXPECT_EQ(metricDirection("wall_sec"),
              MetricDirection::Informational);
    EXPECT_EQ(metricDirection("cache_misses"),
              MetricDirection::Informational);
}

TEST(PerfCompare, FlagsRegressionBeyondTolerance)
{
    const auto before =
        parsePerfRecords(baseline(1000.0, 0.0)).value();
    const auto ok = parsePerfRecords(baseline(900.0, 0.0)).value();
    const auto bad = parsePerfRecords(baseline(700.0, 0.0)).value();

    EXPECT_FALSE(
        comparePerfRecords(before, ok, 0.15).hasRegression());
    const PerfComparison cmp =
        comparePerfRecords(before, bad, 0.15);
    ASSERT_TRUE(cmp.hasRegression());
    const PerfDelta &delta = *cmp.regressions()[0];
    EXPECT_EQ(delta.record, "sweep_serial");
    EXPECT_EQ(delta.metric, "experiments_per_sec");
    EXPECT_NEAR(delta.deltaRel(), -0.3, 1e-12);

    // A faster run never regresses, whatever the tolerance.
    const auto faster =
        parsePerfRecords(baseline(2000.0, 0.0)).value();
    EXPECT_FALSE(
        comparePerfRecords(before, faster, 0.0).hasRegression());
}

TEST(PerfCompare, RepetitionSpreadWidensTheTolerance)
{
    // A 30% drop fails a 15% gate on a quiet host ...
    const auto quietBefore =
        parsePerfRecords(baseline(1000.0, 0.01)).value();
    const auto quietAfter =
        parsePerfRecords(baseline(700.0, 0.01)).value();
    EXPECT_TRUE(comparePerfRecords(quietBefore, quietAfter, 0.15)
                    .hasRegression());

    // ... but not on a host whose own repetitions spread 40%: the
    // spread metric widens the tolerance past the observed drop.
    const auto noisyBefore =
        parsePerfRecords(baseline(1000.0, 0.40)).value();
    const auto noisyAfter =
        parsePerfRecords(baseline(700.0, 0.01)).value();
    const PerfComparison cmp =
        comparePerfRecords(noisyBefore, noisyAfter, 0.15);
    EXPECT_FALSE(cmp.hasRegression());
    ASSERT_FALSE(cmp.deltas.empty());
    EXPECT_NEAR(cmp.deltas[0].tolerance, 0.40, 1e-12);
}

TEST(PerfCompare, TracksRecordChurn)
{
    const auto before = parsePerfRecords(
        "[{\"name\": \"gone\", \"metrics\": {}}]").value();
    const auto after = parsePerfRecords(
        "[{\"name\": \"new\", \"metrics\": {}}]").value();
    const PerfComparison cmp =
        comparePerfRecords(before, after, 0.15);
    ASSERT_EQ(cmp.onlyBefore.size(), 1u);
    EXPECT_EQ(cmp.onlyBefore[0], "gone");
    ASSERT_EQ(cmp.onlyAfter.size(), 1u);
    EXPECT_EQ(cmp.onlyAfter[0], "new");

    const std::string table = perfTableMarkdown(cmp, "t");
    EXPECT_NE(table.find("record removed"), std::string::npos);
    EXPECT_NE(table.find("new record"), std::string::npos);
    EXPECT_NE(table.find("not gated"), std::string::npos);
}

// A record kind present on only one side never gates, even when it
// carries a gating-suffixed metric: there is nothing to diff a first
// introduction (or a retirement) against.
TEST(PerfCompare, OneSidedRecordsNeverGate)
{
    const auto before = parsePerfRecords(
        "[{\"name\": \"sweep_serial\", \"metrics\": "
        "{\"experiments_per_sec\": 1000.0}}]").value();
    const auto after = parsePerfRecords(
        "[{\"name\": \"sweep_serial\", \"metrics\": "
        "{\"experiments_per_sec\": 1000.0}}, "
        "{\"name\": \"serve_c8\", \"metrics\": "
        "{\"requests_per_sec\": 50.0}}]").value();

    // Zero tolerance: any gated delta would fail; the new record
    // contributes no delta at all.
    const PerfComparison cmp = comparePerfRecords(before, after, 0.0);
    EXPECT_FALSE(cmp.hasRegression());
    ASSERT_EQ(cmp.onlyAfter.size(), 1u);
    EXPECT_EQ(cmp.onlyAfter[0], "serve_c8");
    for (const PerfDelta &delta : cmp.deltas)
        EXPECT_EQ(delta.record, "sweep_serial");

    // The reverse direction (record retired) is just as silent.
    const PerfComparison gone = comparePerfRecords(after, before, 0.0);
    EXPECT_FALSE(gone.hasRegression());
    ASSERT_EQ(gone.onlyBefore.size(), 1u);
    EXPECT_EQ(gone.onlyBefore[0], "serve_c8");
}

TEST(PerfCompare, MarkdownTableMarksPassAndFail)
{
    const auto before =
        parsePerfRecords(baseline(1000.0, 0.0)).value();
    const auto after =
        parsePerfRecords(baseline(700.0, 0.0)).value();
    const std::string table = perfTableMarkdown(
        comparePerfRecords(before, after, 0.15), "A vs B");
    EXPECT_NE(table.find("### A vs B"), std::string::npos);
    EXPECT_NE(table.find("**FAIL**"), std::string::npos);
    EXPECT_NE(table.find("-30.0%"), std::string::npos);

    const std::string passing = perfTableMarkdown(
        comparePerfRecords(before, before, 0.15), "A vs A");
    EXPECT_EQ(passing.find("FAIL"), std::string::npos);
    EXPECT_NE(passing.find("ok (tol"), std::string::npos);
}

TEST(PerfCompare, HtmlReportIsSelfContainedAndMarksTheGate)
{
    const auto before =
        parsePerfRecords(baseline(1000.0, 0.0)).value();
    const auto after =
        parsePerfRecords(baseline(700.0, 0.0)).value();
    const std::string html = perfReportHtml(
        {{"A vs B", comparePerfRecords(before, after, 0.15)}},
        "Perf <baseline> \"report\"");

    // Single-file: a full document with inline CSS, no external
    // assets, and the title HTML-escaped.
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("<style>"), std::string::npos);
    EXPECT_EQ(html.find("href="), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos);
    EXPECT_NE(html.find("Perf &lt;baseline&gt; &quot;report&quot;"),
              std::string::npos);

    // The regressed metric fails the gate, with a red delta bar.
    EXPECT_NE(html.find("<h2>A vs B</h2>"), std::string::npos);
    EXPECT_NE(html.find("<span class=\"fail\">FAIL</span>"),
              std::string::npos);
    EXPECT_NE(html.find("-30.0%"), std::string::npos);
    EXPECT_NE(html.find("background:#c0392b"), std::string::npos);

    const std::string passing = perfReportHtml(
        {{"A vs A", comparePerfRecords(before, before, 0.15)}}, "t");
    EXPECT_EQ(passing.find("FAIL"), std::string::npos);
    EXPECT_NE(passing.find("<span class=\"ok\">ok</span>"),
              std::string::npos);
}

TEST(PerfCompare, HtmlReportNotesRecordChurn)
{
    const auto before = parsePerfRecords(
        "[{\"name\": \"gone\", \"metrics\": {}}]").value();
    const auto after = parsePerfRecords(
        "[{\"name\": \"new\", \"metrics\": {}}]").value();
    const std::string html = perfReportHtml(
        {{"churn", comparePerfRecords(before, after, 0.15)}}, "t");
    EXPECT_NE(html.find("record removed"), std::string::npos);
    EXPECT_NE(html.find("new record"), std::string::npos);
}

// ---- the real gate binary ------------------------------------------

TEST(BenchCompareCli, PassesOnIdenticalBaselines)
{
    const std::string a =
        writeFile("bc_same_a.json", baseline(1000.0, 0.05));
    const std::string b =
        writeFile("bc_same_b.json", baseline(1000.0, 0.05));
    const CliResult r = runGate(a + " " + b);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_TRUE(mentions(r, "bench_compare: pass"));
    // The A/B table is printed even when the gate passes.
    EXPECT_TRUE(mentions(r, "| record | metric |"));
}

// The acceptance demonstration: an intentionally slowed run (here a
// 40% throughput drop against the stored baseline) must fire the
// gate — nonzero exit, REGRESSION diagnostic, FAIL row in the table.
TEST(BenchCompareCli, IntentionallySlowedRunFiresTheGate)
{
    const std::string fast =
        writeFile("bc_fast.json", baseline(1000.0, 0.02));
    const std::string slowed =
        writeFile("bc_slowed.json", baseline(600.0, 0.02));
    const CliResult r = runGate(fast + " " + slowed);
    EXPECT_EQ(r.exitCode, 1) << r.output;
    EXPECT_TRUE(mentions(r, "REGRESSION sweep_serial "
                            "experiments_per_sec"));
    EXPECT_TRUE(mentions(r, "**FAIL**"));
}

TEST(BenchCompareCli, SpreadKeepsNoisyDropFromFiring)
{
    const std::string noisy =
        writeFile("bc_noisy.json", baseline(1000.0, 0.45));
    const std::string after =
        writeFile("bc_noisy_after.json", baseline(600.0, 0.02));
    const CliResult r = runGate(noisy + " " + after);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_TRUE(mentions(r, "bench_compare: pass"));
}

TEST(BenchCompareCli, MissingBaselineIsAPassWithANote)
{
    const std::string after =
        writeFile("bc_first_run.json", baseline(1000.0, 0.0));
    const CliResult r =
        runGate(testing::TempDir() + "bc_never_written.json " + after);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_TRUE(mentions(r, "no prior baseline"));
}

// First introduction of a new record kind (a serve baseline landing
// next to an existing sweep baseline): the run must pass, with the
// newcomer reported but not gated.
TEST(BenchCompareCli, NewRecordKindPassesOnFirstIntroduction)
{
    const std::string before =
        writeFile("bc_intro_before.json", baseline(1000.0, 0.02));
    const std::string after = writeFile(
        "bc_intro_after.json",
        "[{\"name\": \"sweep_serial\", \"metrics\": "
        "{\"experiments_per_sec\": 1000.0, "
        "\"experiments_per_sec_spread_rel\": 0.02}, "
        "\"wall_sec\": 1.0}, "
        "{\"name\": \"serve_c8\", \"metrics\": "
        "{\"requests_per_sec\": 42.0, "
        "\"requests_per_sec_spread_rel\": 0.10}, "
        "\"wall_sec\": 2.0}]");
    const CliResult r = runGate(before + " " + after);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_TRUE(mentions(r, "bench_compare: pass"));
    EXPECT_TRUE(mentions(r, "serve_c8 is new in"));
    EXPECT_TRUE(mentions(r, "not gated"));
}

TEST(BenchCompareCli, RemovedRecordKindIsANoteNotAFailure)
{
    const std::string before = writeFile(
        "bc_gone_before.json",
        "[{\"name\": \"sweep_serial\", \"metrics\": "
        "{\"experiments_per_sec\": 1000.0}}, "
        "{\"name\": \"serve_c8\", \"metrics\": "
        "{\"requests_per_sec\": 42.0}}]");
    const std::string after =
        writeFile("bc_gone_after.json", baseline(1000.0, 0.0));
    const CliResult r = runGate(before + " " + after);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_TRUE(mentions(r, "serve_c8 is gone from"));
}

TEST(BenchCompareCli, BadInputsExitTwo)
{
    EXPECT_EQ(runGate("").exitCode, 2);
    EXPECT_EQ(runGate("only_one.json").exitCode, 2);
    EXPECT_EQ(runGate("--tolerance banana a.json b.json").exitCode, 2);

    const std::string good =
        writeFile("bc_good.json", baseline(1000.0, 0.0));
    const std::string broken = writeFile("bc_broken.json", "[{");
    const CliResult r = runGate(broken + " " + good);
    EXPECT_EQ(r.exitCode, 2) << r.output;
}

TEST(BenchCompareCli, SummaryFileReceivesTheTable)
{
    const std::string a =
        writeFile("bc_sum_a.json", baseline(1000.0, 0.0));
    const std::string b =
        writeFile("bc_sum_b.json", baseline(1100.0, 0.0));
    const std::string summary = testing::TempDir() + "bc_summary.md";
    std::remove(summary.c_str());
    const CliResult r =
        runGate("--summary " + summary + " " + a + " " + b);
    EXPECT_EQ(r.exitCode, 0) << r.output;

    std::ifstream in(summary);
    ASSERT_TRUE(in.good()) << summary;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("| record | metric |"), std::string::npos);
    EXPECT_NE(text.find("+10.0%"), std::string::npos);
}

TEST(BenchCompareCli, HtmlFlagWritesTheSingleFileReport)
{
    const std::string a =
        writeFile("bc_html_a.json", baseline(1000.0, 0.0));
    const std::string b =
        writeFile("bc_html_b.json", baseline(600.0, 0.0));
    const std::string out = testing::TempDir() + "bc_report.html";
    std::remove(out.c_str());
    // The report is written even when the gate fails — that run is
    // the one whose delta you want to look at.
    const CliResult r =
        runGate("--html " + out + " " + a + " " + b);
    EXPECT_EQ(r.exitCode, 1) << r.output;

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << out;
    std::string html((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("sweep_serial"), std::string::npos);
    EXPECT_NE(html.find("FAIL"), std::string::npos);
}

} // namespace lhr
