/**
 * @file
 * Fixture matrix for lhrlint (tools/lint): one positive and one
 * negative fixture per rule, suppression and allowlist semantics,
 * the nodiscard collection pass, and the CLI exit-code contract
 * driven through the on-disk fixture trees.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lint.hh"

namespace
{

using lhrlint::Config;
using lhrlint::Finding;

/** Findings of `text` linted as `path` with an empty config. */
std::vector<Finding>
lint(const std::string &path, const std::string &text)
{
    return lhrlint::lintText(path, text, Config{});
}

/** Count of findings carrying `rule`. */
size_t
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

TEST(LintRules, DetRandomPositive)
{
    const auto findings = lint("src/x.cc",
                               "#include <random>\n"
                               "int f() { std::random_device d; "
                               "return rand() + d(); }\n");
    EXPECT_EQ(countRule(findings, "det-random"), 2u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, DetRandomNegative)
{
    // util/rng draws and words merely containing the needles.
    const auto findings = lint("src/x.cc",
                               "int strand(int operand);\n"
                               "int g() { return strand(7); }\n");
    EXPECT_EQ(countRule(findings, "det-random"), 0u);
}

TEST(LintRules, DetClockPositive)
{
    const auto findings =
        lint("src/x.cc",
             "#include <chrono>\n"
             "double f() { auto t = std::chrono::steady_clock::now(); "
             "return time(nullptr) + t.time_since_epoch().count(); }\n");
    EXPECT_EQ(countRule(findings, "det-clock"), 2u);
}

TEST(LintRules, DetClockNegative)
{
    // Identifiers that merely end in "time"/"clock" do not fire, and
    // neither does a clock mention inside a comment or string.
    const auto findings =
        lint("src/x.cc",
             "double wallTime(int stockClock);\n"
             "// steady_clock would be wrong here\n"
             "const char *s = \"time(nullptr)\";\n"
             "double g() { return wallTime(3); }\n");
    EXPECT_EQ(countRule(findings, "det-clock"), 0u);
}

TEST(LintRules, DetUnorderedPositiveAndIncludeExemption)
{
    const auto findings =
        lint("src/x.cc",
             "#include <unordered_map>\n"
             "std::unordered_map<int, int> table;\n");
    // The #include line is not a use; the declaration is.
    ASSERT_EQ(countRule(findings, "det-unordered"), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, DetUnorderedNegative)
{
    const auto findings = lint("src/x.cc",
                               "#include <map>\n"
                               "std::map<int, int> ordered;\n");
    EXPECT_EQ(countRule(findings, "det-unordered"), 0u);
}

TEST(LintRules, FloatComparePositive)
{
    const auto findings = lint("src/x.cc",
                               "bool f(double x) { return x == 1.0; }\n"
                               "bool g(double x) { return 2.5e-3 != x; }\n"
                               "bool h(double x) { return x == -1.5f; }\n");
    EXPECT_EQ(countRule(findings, "float-compare"), 3u);
}

TEST(LintRules, FloatCompareNegative)
{
    // Integer compares, member access around ==, and <=/>= spellings.
    const auto findings =
        lint("src/x.cc",
             "bool f(int x) { return x == 1; }\n"
             "bool g(double x) { return x <= 1.0 || x >= 2.0; }\n"
             "bool h(const S &a, const S &b) { return a.v == b.v; }\n");
    EXPECT_EQ(countRule(findings, "float-compare"), 0u);
}

TEST(LintRules, NoDiscardPositive)
{
    Config config;
    config.nodiscard.insert("saveToFile");
    const auto findings = lhrlint::lintText(
        "src/x.cc",
        "void f(Store &store) {\n"
        "    store.saveToFile(\"grid.csv\");\n"
        "}\n",
        config);
    ASSERT_EQ(countRule(findings, "no-discard"), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRules, NoDiscardHandledNegative)
{
    Config config;
    config.nodiscard.insert("saveToFile");
    config.nodiscard.insert("merge");
    // Assigned, returned, tested, and explicitly voided results all
    // count as handled; so does use as a sub-expression.
    const auto findings = lhrlint::lintText(
        "src/x.cc",
        "Status f(Store &s) {\n"
        "    const Status saved = s.saveToFile(\"a\");\n"
        "    if (!s.merge(other).ok()) return saved;\n"
        "    (void)s.saveToFile(\"b\"); // best effort\n"
        "    return s.merge(other);\n"
        "}\n",
        config);
    EXPECT_EQ(countRule(findings, "no-discard"), 0u);
}

TEST(LintRules, NoDiscardQualifiedChains)
{
    Config config;
    config.nodiscard.insert("tryLoadFile");
    const auto findings = lhrlint::lintText(
        "src/x.cc",
        "void f() { lhr::ResultStore::tryLoadFile(\"grid.csv\"); }\n"
        "void g(Store *s) { s->parent()->tryLoadFile(\"x\"); }\n",
        config);
    EXPECT_EQ(countRule(findings, "no-discard"), 2u);
}

TEST(LintRules, HeaderGuardPositive)
{
    const auto missing = lint("src/x.hh", "int f();\n");
    EXPECT_EQ(countRule(missing, "header-guard"), 1u);
    // #ifndef without its #define is not a guard.
    const auto half = lint("src/y.hh", "#ifndef X\nint f();\n#endif\n");
    EXPECT_EQ(countRule(half, "header-guard"), 1u);
}

TEST(LintRules, HeaderGuardNegative)
{
    const auto pragma = lint("src/x.hh", "#pragma once\nint f();\n");
    EXPECT_EQ(countRule(pragma, "header-guard"), 0u);
    const auto guard = lint(
        "src/y.hh",
        "// comment first\n#ifndef Y_HH\n#define Y_HH\nint f();\n#endif\n");
    EXPECT_EQ(countRule(guard, "header-guard"), 0u);
    // .cc files and .inl fragments are exempt by design.
    EXPECT_EQ(countRule(lint("src/z.cc", "int f();\n"), "header-guard"),
              0u);
    EXPECT_EQ(countRule(lint("src/z.inl", "int f();\n"), "header-guard"),
              0u);
}

TEST(LintRules, UsingNamespaceHeaderPositive)
{
    const auto findings =
        lint("src/x.hh", "#pragma once\nusing namespace std;\n");
    EXPECT_EQ(countRule(findings, "using-namespace-header"), 1u);
    // .inl fragments are textually included too.
    EXPECT_EQ(countRule(lint("src/x.inl", "using namespace std;\n"),
                        "using-namespace-header"),
              1u);
}

TEST(LintRules, UsingNamespaceHeaderNegative)
{
    // Legal in a .cc, and using-declarations are not using-directives.
    EXPECT_EQ(countRule(lint("src/x.cc", "using namespace std;\n"),
                        "using-namespace-header"),
              0u);
    EXPECT_EQ(countRule(lint("src/x.hh",
                             "#pragma once\nusing std::string;\n"),
                        "using-namespace-header"),
              0u);
}

TEST(LintSuppression, SameLineAllowIsHonored)
{
    const auto findings = lint(
        "src/x.cc",
        "std::unordered_map<int, int> t; // lhrlint:allow(det-unordered): lookup-only\n");
    EXPECT_EQ(countRule(findings, "det-unordered"), 0u);
    EXPECT_EQ(countRule(findings, "bare-allow"), 0u);
}

TEST(LintSuppression, NextLineAllowIsHonored)
{
    const auto findings = lint(
        "src/x.cc",
        "// lhrlint:allow-next-line(det-unordered): lookup-only\n"
        "std::unordered_map<int, int> t;\n");
    EXPECT_EQ(countRule(findings, "det-unordered"), 0u);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress)
{
    const auto findings = lint(
        "src/x.cc",
        "std::unordered_map<int, int> t; // lhrlint:allow(det-clock): wrong rule\n");
    EXPECT_EQ(countRule(findings, "det-unordered"), 1u);
}

TEST(LintSuppression, BareAllowIsItselfAFinding)
{
    // No justification, and an unknown rule id: both are bare-allow.
    const auto none = lint(
        "src/x.cc",
        "std::unordered_map<int, int> t; // lhrlint:allow(det-unordered)\n");
    EXPECT_EQ(countRule(none, "det-unordered"), 0u) << "still suppresses";
    EXPECT_EQ(countRule(none, "bare-allow"), 1u) << "but is flagged";
    const auto unknown =
        lint("src/x.cc", "int x; // lhrlint:allow(no-such-rule): why\n");
    EXPECT_EQ(countRule(unknown, "bare-allow"), 1u);
}

TEST(LintSuppression, SuppressionInsideStringIsNotASuppression)
{
    const auto findings = lint(
        "src/x.cc",
        "std::unordered_map<int, int> t; const char *s = \""
        "lhrlint:allow(det-unordered): nope\";\n");
    EXPECT_EQ(countRule(findings, "det-unordered"), 1u);
}

TEST(LintAllowlist, PrefixEntrySuppresses)
{
    Config config;
    std::vector<Finding> errors;
    lhrlint::parseAllowlist(
        "lhrlint.allow",
        "# comment\n"
        "det-clock bench/  # benches time for a living\n",
        config, errors);
    EXPECT_TRUE(errors.empty());
    ASSERT_EQ(config.allow.size(), 1u);

    const std::string body =
        "#include <chrono>\n"
        "auto t() { return std::chrono::steady_clock::now(); }\n";
    EXPECT_EQ(countRule(lhrlint::lintText("bench/t.cc", body, config),
                        "det-clock"),
              0u);
    EXPECT_EQ(countRule(lhrlint::lintText("src/t.cc", body, config),
                        "det-clock"),
              1u);
}

TEST(LintAllowlist, EntriesRequireJustificationAndKnownRule)
{
    Config config;
    std::vector<Finding> errors;
    lhrlint::parseAllowlist("lhrlint.allow",
                            "det-clock bench/\n"          // no reason
                            "not-a-rule src/  # reason\n" // bad rule
                            "det-clock src/a  # fine\n",
                            config, errors);
    EXPECT_EQ(errors.size(), 2u);
    EXPECT_EQ(countRule(errors, "bare-allow"), 2u);
    EXPECT_EQ(config.allow.size(), 1u);
}

TEST(LintCollect, FindsStatusAndExpectedDeclarations)
{
    std::set<std::string> names;
    lhrlint::collectNodiscard(
        "class X {\n"
        "  Status merge(const X &other);\n"
        "  [[nodiscard]] static Expected<X> tryLoad(std::istream &is);\n"
        "  Expected<std::vector<int>> parseAll(const std::string &s);\n"
        "  const Status &status() const;\n"
        "};\n"
        "Status freeSave(const std::string &path);\n",
        names);
    EXPECT_TRUE(names.count("merge"));
    EXPECT_TRUE(names.count("tryLoad"));
    EXPECT_TRUE(names.count("parseAll"));
    EXPECT_TRUE(names.count("status"));
    EXPECT_TRUE(names.count("freeSave"));
}

TEST(LintCollect, IgnoresNonDeclarations)
{
    std::set<std::string> names;
    lhrlint::collectNodiscard(
        "Status saved = s.save(os);\n"       // variable, not function
        "void f(Status incoming);\n"         // parameter
        "enum class StatusCode { Ok };\n"    // different identifier
        "Expected value;\n"                  // no template args
        "// Status comment(int);\n",         // comment
        names);
    EXPECT_TRUE(names.empty());
}

TEST(LintViews, StringsAndCommentsAreBlind)
{
    // Rule needles inside comments, strings, and raw strings never
    // fire; real code after them still does.
    const auto findings = lint(
        "src/x.cc",
        "// rand() in a comment\n"
        "const char *a = \"rand()\";\n"
        "const char *b = R\"(std::random_device inside raw)\";\n"
        "int c = rand();\n");
    ASSERT_EQ(countRule(findings, "det-random"), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintCli, ExitCodesOverFixtureTrees)
{
    const std::string fixtures = LHRLINT_FIXTURE_DIR;
    std::ostringstream out, err;

    // Dirty tree: findings -> exit 1, every rule represented.
    std::ostringstream dirtyOut;
    EXPECT_EQ(lhrlint::runLhrlint({fixtures + "/dirty"}, dirtyOut, err),
              1);
    for (const char *rule :
         {"no-discard", "det-random", "det-clock", "det-unordered",
          "float-compare", "header-guard", "using-namespace-header",
          "bare-allow"})
        EXPECT_NE(dirtyOut.str().find(rule), std::string::npos) << rule;

    // Clean tree with its allowlist: exit 0, no output.
    std::ostringstream cleanOut;
    EXPECT_EQ(lhrlint::runLhrlint({"--allowlist",
                                   fixtures + "/clean.allow",
                                   fixtures + "/clean"},
                                  cleanOut, err),
              0);
    EXPECT_TRUE(cleanOut.str().empty());

    // Usage errors and unreadable paths: exit 2.
    EXPECT_EQ(lhrlint::runLhrlint({}, out, err), 2);
    EXPECT_EQ(lhrlint::runLhrlint({"--no-such-flag"}, out, err), 2);
    EXPECT_EQ(lhrlint::runLhrlint({fixtures + "/does-not-exist"}, out,
                                  err),
              2);
    EXPECT_EQ(lhrlint::runLhrlint(
                  {"--allowlist", fixtures + "/missing.allow",
                   fixtures + "/clean"},
                  out, err),
              2);

    // --list-rules prints the catalog and exits 0.
    std::ostringstream rules;
    EXPECT_EQ(lhrlint::runLhrlint({"--list-rules"}, rules, err), 0);
    EXPECT_NE(rules.str().find("no-discard"), std::string::npos);
}

TEST(LintFinding, CanonicalRendering)
{
    const Finding finding{"src/x.cc", 12, "det-clock", "message"};
    EXPECT_EQ(finding.toString(), "src/x.cc:12: det-clock: message");
}

} // namespace
