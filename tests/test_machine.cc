/**
 * @file
 * Tests for the processor database (Table 3) and the BIOS-style
 * configurator (section 2.8).
 */

#include <gtest/gtest.h>

#include <set>

#include "machine/processor.hh"

namespace lhr
{

TEST(Machine, EightProcessors)
{
    EXPECT_EQ(allProcessors().size(), 8u);
}

TEST(Machine, Table3SpotChecks)
{
    const ProcessorSpec &i7 = processorById("i7 (45)");
    EXPECT_EQ(i7.model, "Core i7 920");
    EXPECT_EQ(i7.sSpec, "SLBCH");
    EXPECT_EQ(i7.codename, "Bloomfield");
    EXPECT_EQ(i7.cores, 4);
    EXPECT_EQ(i7.smtWays, 2);
    EXPECT_DOUBLE_EQ(i7.llcMb, 8.0);
    EXPECT_DOUBLE_EQ(i7.transistorsM, 731.0);
    EXPECT_DOUBLE_EQ(i7.tdpW, 130.0);
    EXPECT_TRUE(i7.hasTurbo);

    const ProcessorSpec &p4 = processorById("Pentium4 (130)");
    EXPECT_EQ(p4.family, Family::NetBurst);
    EXPECT_EQ(p4.cores, 1);
    EXPECT_EQ(p4.smtWays, 2);
    EXPECT_FALSE(p4.hasTurbo);
    EXPECT_EQ(p4.tech().featureNm, 130);

    const ProcessorSpec &atom = processorById("Atom (45)");
    EXPECT_DOUBLE_EQ(atom.tdpW, 4.0);
    EXPECT_DOUBLE_EQ(atom.releasePriceUsd, 29.0);

    EXPECT_DEATH(processorById("Itanium"), "unknown processor");
}

TEST(Machine, TdpOrderingMatchesTable3)
{
    EXPECT_GT(processorById("i7 (45)").tdpW,
              processorById("C2Q (65)").tdpW - 1e9); // i7 130 > 105
    EXPECT_LT(processorById("Atom (45)").tdpW,
              processorById("AtomD (45)").tdpW);
}

TEST(Machine, StockConfig)
{
    const auto cfg = stockConfig(processorById("i5 (32)"));
    EXPECT_EQ(cfg.enabledCores, 2);
    EXPECT_EQ(cfg.smtPerCore, 2);
    EXPECT_EQ(cfg.contexts(), 4);
    EXPECT_TRUE(cfg.turboEnabled);
    EXPECT_NEAR(cfg.clockGhz, 3.46, 1e-9);
}

TEST(Machine, ConfigLabels)
{
    const auto i7 = stockConfig(processorById("i7 (45)"));
    EXPECT_EQ(i7.label(), "i7 (45) 4C2T@2.7GHz");
    EXPECT_EQ(withTurbo(i7, false).label(), "i7 (45) 4C2T@2.7GHz NoTB");
    const auto p4 = stockConfig(processorById("Pentium4 (130)"));
    EXPECT_EQ(p4.label(), "Pentium4 (130) 1C2T@2.4GHz");
}

TEST(Machine, ConfiguratorValidation)
{
    const auto i7 = stockConfig(processorById("i7 (45)"));
    EXPECT_DEATH(withCores(i7, 5), "out of range");
    EXPECT_DEATH(withCores(i7, 0), "out of range");
    EXPECT_DEATH(withClock(i7, 0.5), "out of range");
    EXPECT_DEATH(withClock(i7, 4.0), "out of range");

    const auto c2d = stockConfig(processorById("C2D (65)"));
    EXPECT_DEATH(withSmt(c2d, true), "no SMT");
    EXPECT_DEATH(withTurbo(c2d, true), "no Turbo");
}

TEST(Machine, ConfigurationCounts)
{
    EXPECT_EQ(standardConfigurations().size(), 45u);
    EXPECT_EQ(configurations45nm().size(), 29u);
}

TEST(Machine, EraNamesRoundTrip)
{
    ASSERT_EQ(allEras().size(), 8u);
    for (const Era era : allEras())
        EXPECT_EQ(parseEra(eraName(era)), era);
    EXPECT_EQ(eraName(Era::Paper45), "45nm");
    EXPECT_EQ(eraName(Era::Haswell), "haswell");
    EXPECT_DEATH(parseEra("7nm"), "unknown era");
}

TEST(Machine, PostPaperServerParts)
{
    const auto &servers = postPaperProcessors();
    ASSERT_EQ(servers.size(), 4u);
    EXPECT_EQ(servers[0].era, Era::SandyBridge);
    EXPECT_EQ(servers[3].era, Era::Skylake);
    for (size_t i = 0; i < servers.size(); ++i) {
        const ProcessorSpec &s = servers[i];
        EXPECT_TRUE(s.hasTurbo) << s.id;
        EXPECT_EQ(s.smtWays, 2) << s.id;
        EXPECT_GE(s.turboSteps1C, s.turboStepsAllC) << s.id;
        // Core counts grow monotonically across the generations.
        if (i > 0) {
            EXPECT_GT(s.cores, servers[i - 1].cores) << s.id;
        }
    }
    // AVX license derating starts at Haswell; Sandy Bridge has none.
    EXPECT_DOUBLE_EQ(servers[0].avxClockPenalty, 0.0);
    for (size_t i = 1; i < servers.size(); ++i)
        EXPECT_GT(servers[i].avxClockPenalty, 0.0) << servers[i].id;
}

TEST(Machine, ProcessorIdsAreUniqueAcrossBothTables)
{
    std::set<std::string> ids;
    for (const auto &spec : allProcessors())
        EXPECT_TRUE(ids.insert(spec.id).second) << spec.id;
    for (const auto &spec : postPaperProcessors())
        EXPECT_TRUE(ids.insert(spec.id).second) << spec.id;
    EXPECT_EQ(ids.size(), 12u);
}

TEST(Machine, UnknownProcessorIdListsTheValidOnes)
{
    // The panic names every valid id from both tables, so a typo'd
    // sweep config is a one-look fix.
    EXPECT_DEATH(processorById("Itanium"),
                 "valid ids.*i7 \\(45\\).*XeonSP \\(14\\)");
    EXPECT_EQ(findProcessor("Itanium"), nullptr);
    EXPECT_EQ(findProcessor("XeonSP (14)"),
              &processorById("XeonSP (14)"));
}

TEST(Machine, EraGridsCoverEveryEra)
{
    const auto byEra = configurationsByEra();
    ASSERT_EQ(byEra.size(), 8u);
    size_t paperTotal = 0;
    for (const auto &era : byEra) {
        ASSERT_FALSE(era.configs.empty()) << eraName(era.era);
        for (const auto &cfg : era.configs)
            EXPECT_EQ(cfg.spec->era, era.era) << cfg.label();
        if (era.era >= Era::SandyBridge)
            EXPECT_EQ(era.configs.size(), 10u) << eraName(era.era);
        else
            paperTotal += era.configs.size();
    }
    // The paper eras partition the 45-configuration standard grid.
    EXPECT_EQ(paperTotal, standardConfigurations().size());
    EXPECT_EQ(configurationsOfEra(Era::Paper45).size(), 29u);
}

TEST(Machine, All45nmConfigurationsAreAt45nm)
{
    for (const auto &cfg : configurations45nm())
        EXPECT_EQ(cfg.spec->tech().featureNm, 45) << cfg.label();
}

TEST(Machine, ConfigurationLabelsAreUnique)
{
    std::set<std::string> labels;
    for (const auto &cfg : standardConfigurations())
        EXPECT_TRUE(labels.insert(cfg.label()).second) << cfg.label();
}

TEST(Machine, Table5ConfigurationsExist)
{
    // The configurations named in paper Table 5 must all be part of
    // the 45nm experimental set.
    const std::vector<std::string> expected = {
        "Atom (45) 1C2T@1.7GHz",
        "C2D (45) 2C1T@1.6GHz",
        "C2D (45) 2C1T@3.1GHz",
        "i7 (45) 1C1T@2.7GHz NoTB",
        "i7 (45) 1C1T@2.7GHz",
        "i7 (45) 1C2T@1.6GHz NoTB",
        "i7 (45) 1C2T@2.4GHz NoTB",
        "i7 (45) 2C1T@1.6GHz NoTB",
        "i7 (45) 2C2T@1.6GHz NoTB",
        "i7 (45) 4C1T@2.7GHz NoTB",
        "i7 (45) 4C1T@2.7GHz",
        "i7 (45) 4C2T@1.6GHz NoTB",
        "i7 (45) 4C2T@2.1GHz NoTB",
        "i7 (45) 4C2T@2.7GHz NoTB",
        "i7 (45) 4C2T@2.7GHz",
    };
    std::set<std::string> labels;
    for (const auto &cfg : configurations45nm())
        labels.insert(cfg.label());
    for (const auto &want : expected)
        EXPECT_TRUE(labels.count(want)) << want;
}

TEST(Machine, VoltageCurveMonotonic)
{
    for (const auto &spec : allProcessors()) {
        const auto cfg = stockConfig(spec);
        double prev = 0.0;
        for (double f = spec.fMinGhz; f <= spec.stockClockGhz + 1e-9;
             f += 0.05) {
            const double v = cfg.voltageAt(f);
            EXPECT_GE(v, prev - 1e-12) << spec.id << " @ " << f;
            EXPECT_GE(v, 0.5);
            EXPECT_LE(v, 1.7);
            prev = v;
        }
    }
}

TEST(Machine, VoltageCurveEndpoints)
{
    for (const auto &spec : allProcessors()) {
        const auto cfg = stockConfig(spec);
        EXPECT_NEAR(cfg.voltageAt(spec.fMinGhz), spec.vEffMin, 1e-12);
        EXPECT_NEAR(cfg.voltageAt(spec.stockClockGhz), spec.vEffMax,
                    1e-9);
    }
}

TEST(Machine, TurboVoltageKick)
{
    const ProcessorSpec &i7 = processorById("i7 (45)");
    const auto cfg = stockConfig(i7);
    const double oneStep =
        cfg.voltageAt(i7.stockClockGhz + i7.turboStepGhz);
    const double twoSteps = cfg.voltageAt(
        i7.stockClockGhz + 2.0 * i7.turboStepGhz);
    EXPECT_NEAR(oneStep, i7.vEffMax + i7.turboVKickV, 1e-9);
    EXPECT_NEAR(twoSteps, i7.vEffMax + 2.0 * i7.turboVKickV, 1e-9);
}

TEST(Machine, HierarchiesMatchFamilies)
{
    // Nehalem: three levels; others: two.
    EXPECT_EQ(makeHierarchy(processorById("i7 (45)")).levels().size(),
              3u);
    EXPECT_EQ(makeHierarchy(processorById("i5 (32)")).levels().size(),
              3u);
    EXPECT_EQ(
        makeHierarchy(processorById("Pentium4 (130)")).levels().size(),
        2u);
    EXPECT_EQ(makeHierarchy(processorById("Atom (45)")).levels().size(),
              2u);
}

TEST(Machine, LlcCapacitiesMatchTable3)
{
    const auto i7 = makeHierarchy(processorById("i7 (45)"));
    EXPECT_DOUBLE_EQ(i7.levels().back().capacityKb, 8192.0);
    const auto p4 = makeHierarchy(processorById("Pentium4 (130)"));
    EXPECT_DOUBLE_EQ(p4.levels().back().capacityKb, 512.0);
    // Kentsfield: one 4MB instance per pair of cores.
    const auto c2q = makeHierarchy(processorById("C2Q (65)"));
    EXPECT_DOUBLE_EQ(c2q.levels().back().capacityKb, 4096.0);
    EXPECT_EQ(c2q.levels().back().sharedByCores, 2);
}

/** Property sweep across all processors. */
class ProcessorSweep
    : public ::testing::TestWithParam<const ProcessorSpec *>
{
};

TEST_P(ProcessorSweep, SpecIsPhysical)
{
    const ProcessorSpec &s = *GetParam();
    EXPECT_GT(s.cores, 0);
    EXPECT_GE(s.smtWays, 1);
    EXPECT_LE(s.smtWays, 2);
    EXPECT_GT(s.llcMb, 0.0);
    EXPECT_GT(s.stockClockGhz, s.fMinGhz - 1e-9);
    EXPECT_GT(s.transistorsM, 0.0);
    EXPECT_GT(s.dieMm2, 0.0);
    EXPECT_GT(s.tdpW, 0.0);
    EXPECT_GT(s.vEffMax, s.vEffMin - 1e-12);
    EXPECT_GT(s.perfCal, 0.0);
    EXPECT_GT(s.powerCal, 0.0);
    EXPECT_GT(s.leakCal, 0.0);
    // VID range from Table 3 must bracket the calibrated
    // effective voltages when published.
    if (s.vidMaxV > 0.0) {
        EXPECT_GE(s.vEffMin, s.vidMinV - 1e-9) << s.id;
        EXPECT_LE(s.vEffMax, s.vidMaxV + 1e-9) << s.id;
    }
}

TEST_P(ProcessorSweep, MemoryResolves)
{
    EXPECT_GT(GetParam()->memory().bandwidthGBs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProcessors, ProcessorSweep,
    ::testing::ValuesIn([] {
        std::vector<const ProcessorSpec *> all;
        for (const auto &spec : allProcessors())
            all.push_back(&spec);
        return all;
    }()),
    [](const ::testing::TestParamInfo<const ProcessorSpec *> &info) {
        std::string name = info.param->id;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace lhr
