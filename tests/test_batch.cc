/**
 * @file
 * Tests for the batch evaluation path (ExperimentRunner::measureBatch
 * and the SweepEngine's batch fill mode): bitwise equivalence to the
 * scalar path over the full experimental grid, degenerate batch
 * shapes, fault fallback semantics, cache accounting, and the
 * accuracy bound the certainty-window sampler relies on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "fault/fault.hh"
#include "sensor/gauss_kernel.hh"
#include "harness/runner.hh"
#include "machine/processor.hh"
#include "sweep/sweep.hh"
#include "util/status.hh"
#include "workload/benchmark.hh"

namespace lhr
{

namespace
{

/** Bitwise equality over every Measurement field — no tolerance. */
bool
identical(const Measurement &a, const Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations &&
        a.samplesLost == b.samplesLost &&
        a.samplesRailed == b.samplesRailed &&
        a.samplesDuplicated == b.samplesDuplicated &&
        a.retries == b.retries &&
        a.extraInvocations == b.extraInvocations &&
        a.outlierInvocations == b.outlierInvocations &&
        a.degraded == b.degraded;
}

std::vector<const MachineConfig *>
pointers(const std::vector<MachineConfig> &configs)
{
    std::vector<const MachineConfig *> out;
    out.reserve(configs.size());
    for (const MachineConfig &cfg : configs)
        out.push_back(&cfg);
    return out;
}

} // namespace

// The tentpole contract: measureBatch over the paper's full grid —
// every standard configuration (which spans both SMT settings),
// every benchmark — is bit-identical to scalar measure(), across
// every Measurement field including the fault accounting.
TEST(BatchEquivalence, FullGridBitIdentical)
{
    const std::vector<MachineConfig> configs =
        standardConfigurations();
    const std::vector<const MachineConfig *> batch =
        pointers(configs);
    const auto &benchmarks = allBenchmarks();

    ExperimentRunner scalar;
    ExperimentRunner batched;
    for (const Benchmark &bench : benchmarks) {
        const std::vector<ExperimentRunner::BatchOutcome> outcomes =
            batched.measureBatch(batch, bench);
        ASSERT_EQ(outcomes.size(), configs.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            ASSERT_TRUE(outcomes[i].ok())
                << bench.name << " @ " << configs[i].label() << ": "
                << outcomes[i].status.toString();
            const Measurement &reference =
                scalar.measure(configs[i], bench);
            EXPECT_TRUE(
                identical(reference, *outcomes[i].measurement))
                << bench.name << " @ " << configs[i].label();
        }
    }
}

// Explicit both-SMT coverage on an SMT-capable part: the batch path
// must keep the two siblings distinct and each bit-identical to its
// scalar measurement.
TEST(BatchEquivalence, BothSmtSettingsDistinctAndIdentical)
{
    const MachineConfig on =
        withSmt(stockConfig(processorById("i7 (45)")), true);
    const MachineConfig off =
        withSmt(stockConfig(processorById("i7 (45)")), false);
    const Benchmark &bench = allBenchmarks().front();

    ExperimentRunner scalar;
    ExperimentRunner batched;
    const auto outcomes = batched.measureBatch({&on, &off}, bench);
    ASSERT_EQ(outcomes.size(), 2u);
    ASSERT_TRUE(outcomes[0].ok());
    ASSERT_TRUE(outcomes[1].ok());
    EXPECT_TRUE(identical(scalar.measure(on, bench),
                          *outcomes[0].measurement));
    EXPECT_TRUE(identical(scalar.measure(off, bench),
                          *outcomes[1].measurement));
    EXPECT_FALSE(identical(*outcomes[0].measurement,
                           *outcomes[1].measurement));
}

TEST(BatchEquivalence, DegenerateBatches)
{
    const MachineConfig cfg = stockConfig(processorById("Atom (45)"));
    const Benchmark &bench = allBenchmarks().front();

    ExperimentRunner runner;

    // Empty batch: nothing measured, nothing counted.
    EXPECT_TRUE(runner.measureBatch({}, bench).empty());
    EXPECT_EQ(runner.cacheStats().lookups(), 0u);

    // Size-1 batch behaves exactly like measure().
    const auto one = runner.measureBatch({&cfg}, bench);
    ASSERT_EQ(one.size(), 1u);
    ASSERT_TRUE(one[0].ok());
    ExperimentRunner reference;
    EXPECT_TRUE(identical(reference.measure(cfg, bench),
                          *one[0].measurement));

    // Single-config shard: the same configuration repeated resolves
    // every slot to the one cached measurement.
    ExperimentRunner dup;
    const auto repeated =
        dup.measureBatch({&cfg, &cfg, &cfg}, bench);
    ASSERT_EQ(repeated.size(), 3u);
    for (const auto &outcome : repeated) {
        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(outcome.measurement, repeated[0].measurement);
    }
    EXPECT_EQ(dup.cacheStats().misses, 1u);
    EXPECT_EQ(dup.cacheStats().hits, 2u);
}

// A poisoned configuration inside a batch carries its error in its
// own outcome; every clean cell of the same batch stays bit-identical
// to a plan-free scalar runner.
TEST(BatchEquivalence, PoisonedConfigLeavesCleanCellsUntouched)
{
    std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
        stockConfig(processorById("i7 (45)")),
        withSmt(stockConfig(processorById("i5 (32)")), false),
    };
    const Benchmark &bench = allBenchmarks().front();

    ExperimentRunner poisoned;
    FaultPlan plan;
    plan.poisonedConfig = configs[1].label();
    poisoned.setFaultPlan(plan);

    const auto outcomes =
        poisoned.measureBatch(pointers(configs), bench);
    ASSERT_EQ(outcomes.size(), configs.size());

    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_NE(outcomes[1].status.message().find(configs[1].label()),
              std::string::npos);

    ExperimentRunner clean;
    for (const size_t i : {size_t{0}, size_t{2}}) {
        ASSERT_TRUE(outcomes[i].ok()) << configs[i].label();
        EXPECT_TRUE(identical(clean.measure(configs[i], bench),
                              *outcomes[i].measurement))
            << configs[i].label();
    }
}

// measureBatch must keep measure()'s cache accounting: one miss per
// cell the call computes, one hit per cell already cached — summed
// correctly across the runner's shards.
TEST(BatchEquivalence, CacheCountsOneMissPerComputedCell)
{
    const std::vector<MachineConfig> configs = {
        stockConfig(processorById("Atom (45)")),
        stockConfig(processorById("i7 (45)")),
        withSmt(stockConfig(processorById("i5 (32)")), false),
    };
    const Benchmark &bench = allBenchmarks().front();

    ExperimentRunner runner;
    const auto first = runner.measureBatch(pointers(configs), bench);
    ASSERT_EQ(first.size(), configs.size());
    EXPECT_EQ(runner.cacheStats().misses, configs.size());
    EXPECT_EQ(runner.cacheStats().hits, 0u);

    const auto second = runner.measureBatch(pointers(configs), bench);
    ASSERT_EQ(second.size(), configs.size());
    EXPECT_EQ(runner.cacheStats().misses, configs.size());
    EXPECT_EQ(runner.cacheStats().hits, configs.size());
}

// The sweep's batch fill mode inherits the same accounting: a cold
// sweep counts exactly one miss per cell, a warm re-sweep one hit.
TEST(BatchEquivalence, SweepBatchFillCountsOneMissPerCell)
{
    std::vector<MachineConfig> configs = standardConfigurations();
    configs.resize(4);
    const std::vector<Benchmark> benchmarks(
        allBenchmarks().begin(), allBenchmarks().begin() + 5);
    const size_t cells = configs.size() * benchmarks.size();

    ExperimentRunner runner;
    SweepEngine engine(runner, {.threads = 1});
    const SweepReport cold = engine.run(configs, benchmarks);
    EXPECT_EQ(cold.cache.misses, cells);
    EXPECT_EQ(cold.cache.hits, 0u);

    // The report's counters are per-sweep deltas: a warm re-sweep
    // is all hits, no misses.
    const SweepReport warm = engine.run(configs, benchmarks);
    EXPECT_EQ(warm.cache.misses, 0u);
    EXPECT_EQ(warm.cache.hits, cells);
}

// The sweep's batch fill and scalar per-cell fill must agree cell by
// cell — the guarantee SweepOptions::batchFill documents.
TEST(BatchEquivalence, SweepBatchFillMatchesScalarFill)
{
    std::vector<MachineConfig> configs = standardConfigurations();
    configs.resize(6);
    const std::vector<Benchmark> benchmarks(
        allBenchmarks().begin(), allBenchmarks().begin() + 8);

    ExperimentRunner batchRunner;
    SweepEngine batchEngine(batchRunner, {.threads = 1});
    const SweepReport batch = batchEngine.run(configs, benchmarks);

    ExperimentRunner scalarRunner;
    SweepEngine scalarEngine(scalarRunner,
                             {.threads = 1, .batchFill = false});
    const SweepReport scalar = scalarEngine.run(configs, benchmarks);

    ASSERT_EQ(batch.cells.size(), scalar.cells.size());
    for (size_t i = 0; i < batch.cells.size(); ++i) {
        ASSERT_NE(batch.cells[i].measurement, nullptr);
        ASSERT_NE(scalar.cells[i].measurement, nullptr);
        EXPECT_TRUE(identical(*batch.cells[i].measurement,
                              *scalar.cells[i].measurement))
            << batch.cells[i].benchmark->name << " @ "
            << batch.cells[i].config->label();
    }
}

// The certainty-window sampler is sound only while the polynomial
// kernel stays within gaussKernelMaxError of libm. Measure the
// actual worst case of every resolved kernel against the exact
// Box-Muller expression and require an order of magnitude of slack.
TEST(GaussKernel, StaysWithinDocumentedErrorBound)
{
    constexpr size_t n = 1 << 15;
    std::vector<double> u1(n), u2(n), gc(n), gs(n);
    std::mt19937_64 rng(0x1234abcdu);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    for (size_t i = 0; i < n; ++i) {
        double u = 0.0;
        while (u <= 0.0)
            u = uniform(rng);
        u1[i] = u;
        u2[i] = uniform(rng);
    }
    // Include the extremes the sampler can actually produce.
    u1[0] = 0x1p-53;
    u1[1] = 1.0 - 0x1p-53;
    u2[1] = 1.0 - 0x1p-53;

    std::vector<GaussKernelFn> kernels = {&gaussPairsBase};
    if (GaussKernelFn avx2 = gaussKernelAvx2OrNull())
        kernels.push_back(avx2);

    for (GaussKernelFn kernel : kernels) {
        kernel(u1.data(), u2.data(), gc.data(), gs.data(), n);
        double maxError = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double r = std::sqrt(-2.0 * std::log(u1[i]));
            const double theta =
                2.0 * 3.141592653589793238462643383279502884 * u2[i];
            maxError = std::max(
                maxError, std::fabs(gc[i] - r * std::cos(theta)));
            maxError = std::max(
                maxError, std::fabs(gs[i] - r * std::sin(theta)));
        }
        EXPECT_LT(maxError, gaussKernelMaxError / 10.0);
    }
}

// Where both quantize builds accept a lane, they must agree on its
// count: acceptance means the count is provably the exact one, so
// any disagreement would break the bit-identity argument.
TEST(GaussKernel, QuantizeBuildsAgreeOnAcceptedLanes)
{
    SampleQuantizeFn avx2 = sampleQuantizeAvx2OrNull();
    if (!avx2)
        GTEST_SKIP() << "binary built without the AVX2 kernel";

    constexpr int n = 4096;
    std::vector<double> w(n), g1(n), g2(n);
    std::mt19937_64 rng(0x5678u);
    std::uniform_real_distribution<double> watts(0.0, 120.0);
    std::normal_distribution<double> gauss(0.0, 1.0);
    for (int i = 0; i < n; ++i) {
        w[i] = watts(rng);
        g1[i] = gauss(rng);
        g2[i] = gauss(rng);
    }

    SampleQuantizeParams p;
    p.sens = 0.09;
    p.gainFactor = 1.004;
    p.offsetVolts = 0.002;
    p.noiseVolts = 0.005;
    p.ratedAmps = 20.0;
    p.window = 1e-4;
    p.zeroWattsGuard = 1e-6;

    std::vector<int32_t> countsA(n, -1), countsB(n, -1);
    std::vector<int32_t> flaggedA(n), flaggedB(n);
    const size_t nA = sampleQuantizeBase(
        w.data(), g1.data(), g2.data(), n, p, countsA.data(),
        flaggedA.data());
    const size_t nB = avx2(w.data(), g1.data(), g2.data(), n, p,
                           countsB.data(), flaggedB.data());

    std::vector<bool> uncertainA(n, false), uncertainB(n, false);
    for (size_t i = 0; i < nA; ++i)
        uncertainA[(size_t)flaggedA[i]] = true;
    for (size_t i = 0; i < nB; ++i)
        uncertainB[(size_t)flaggedB[i]] = true;

    size_t bothAccepted = 0;
    for (int s = 0; s < n; ++s) {
        if (uncertainA[(size_t)s] || uncertainB[(size_t)s])
            continue;
        ++bothAccepted;
        EXPECT_EQ(countsA[(size_t)s], countsB[(size_t)s])
            << "lane " << s;
    }
    // The window above is tight; nearly every lane should be
    // accepted, otherwise the fast path is not actually fast.
    EXPECT_GT(bothAccepted, (size_t)(0.99 * n));
}

} // namespace lhr
