/**
 * @file
 * Tests for the micro-op pipeline simulator and its agreement with
 * the analytic CPI layer.
 */

#include <gtest/gtest.h>

#include "counters/hwcounters.hh"
#include "cpu/perf_model.hh"
#include "pipesim/pipeline.hh"

namespace lhr
{

namespace
{

std::vector<std::pair<double, int>>
levelsOf(const ProcessorSpec &spec)
{
    return structuralLevels(spec);
}

double
pipeIpc(const ProcessorSpec &spec, const char *bench_name,
        uint64_t seed = 7)
{
    PipelineSim pipe(PipelineConfig::of(spec, spec.stockClockGhz),
                     levelsOf(spec));
    return pipe.run(benchmarkByName(bench_name), 200000, seed).ipc;
}

} // namespace

TEST(PipelineConfig, DerivedFromProcessor)
{
    const auto &i7 = processorById("i7 (45)");
    const auto cfg = PipelineConfig::of(i7, 2.667);
    EXPECT_EQ(cfg.issueWidth, 4);
    EXPECT_FALSE(cfg.inOrder);
    EXPECT_EQ(cfg.windowSize, 128);
    EXPECT_EQ(cfg.levelLatencyCycles.size(), 2u); // L2, L3
    // DRAM at 2.667GHz and ~55ns is ~147 cycles.
    EXPECT_NEAR(cfg.dramLatencyCycles, 147, 5);
    EXPECT_DEATH(PipelineConfig::of(i7, 0.0), "clock");

    const auto atomCfg =
        PipelineConfig::of(processorById("Atom (45)"), 1.667);
    EXPECT_TRUE(atomCfg.inOrder);
    EXPECT_EQ(atomCfg.windowSize, 8);
}

TEST(PipelineSim, ValidatesInputs)
{
    const auto &i7 = processorById("i7 (45)");
    PipelineSim pipe(PipelineConfig::of(i7, 2.667), levelsOf(i7));
    EXPECT_DEATH(pipe.run(benchmarkByName("gcc"), 0, 1),
                 "zero instructions");
}

TEST(PipelineSim, DeterministicForEqualSeeds)
{
    const auto &i7 = processorById("i7 (45)");
    const auto cfg = PipelineConfig::of(i7, 2.667);
    PipelineSim a(cfg, levelsOf(i7)), b(cfg, levelsOf(i7));
    const auto ra = a.run(benchmarkByName("gcc"), 100000, 42);
    const auto rb = b.run(benchmarkByName("gcc"), 100000, 42);
    EXPECT_DOUBLE_EQ(ra.ipc, rb.ipc);
}

TEST(PipelineSim, ResultIsInternallyConsistent)
{
    const auto &i7 = processorById("i7 (45)");
    PipelineSim pipe(PipelineConfig::of(i7, 2.667), levelsOf(i7));
    const auto r = pipe.run(benchmarkByName("xalan"), 150000, 3);
    EXPECT_EQ(r.instructions, 150000u);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_NEAR(r.ipc, r.instructions / r.cycles, 1e-9);
    EXPECT_GE(r.memStallShare, 0.0);
    EXPECT_LE(r.memStallShare, 1.0);
    EXPECT_GE(r.branchStallShare, 0.0);
    EXPECT_LE(r.branchStallShare + r.memStallShare, 1.0 + 1e-9);
}

TEST(PipelineSim, IpcNeverExceedsIssueWidth)
{
    for (const char *id : {"i7 (45)", "Atom (45)"}) {
        const auto &spec = processorById(id);
        for (const char *name : {"hmmer", "mcf", "povray"}) {
            const double ipc = pipeIpc(spec, name);
            EXPECT_GT(ipc, 0.0) << id << "/" << name;
            EXPECT_LE(ipc, spec.uarch().issueWidth) << id << "/"
                                                    << name;
        }
    }
}

TEST(PipelineSim, BenchmarkOrderingMatchesAnalytic)
{
    // hmmer (compute) > gcc (mixed) > mcf (memory-bound), on both
    // modeling layers.
    const auto &i7 = processorById("i7 (45)");
    const double hmmer = pipeIpc(i7, "hmmer");
    const double gcc = pipeIpc(i7, "gcc");
    const double mcf = pipeIpc(i7, "mcf");
    EXPECT_GT(hmmer, gcc);
    EXPECT_GT(gcc, mcf);
}

TEST(PipelineSim, MicroarchitectureRankingMatchesAnalytic)
{
    // Per clock: Nehalem > Core > {NetBurst, Bonnell}.
    const double i7 = pipeIpc(processorById("i7 (45)"), "gcc");
    const double c2d = pipeIpc(processorById("C2D (65)"), "gcc");
    const double p4 = pipeIpc(processorById("Pentium4 (130)"), "gcc");
    const double atom = pipeIpc(processorById("Atom (45)"), "gcc");
    EXPECT_GT(i7, c2d);
    EXPECT_GT(c2d, p4);
    EXPECT_GT(c2d, atom);
}

TEST(PipelineSim, CorrelatesWithAnalyticIpc)
{
    // The detailed model sits below the analytic closed form but
    // must stay within a constant band of it across benchmarks.
    const auto &i7 = processorById("i7 (45)");
    const PerfModel analytic(i7);
    for (const char *name :
         {"hmmer", "gcc", "mcf", "xalan", "povray", "db"}) {
        const double ratio = pipeIpc(i7, name) /
            analytic.threadCpi(benchmarkByName(name),
                               i7.stockClockGhz, 1, 1.0).ipc();
        EXPECT_GT(ratio, 0.3) << name;
        EXPECT_LT(ratio, 1.5) << name;
    }
}

TEST(PipelineSim, WindowAndOrderingMatterForMemoryBoundCode)
{
    // Give the in-order Atom an out-of-order 128-entry window:
    // memory-bound code speeds up as its latency overlaps with
    // younger independent work.
    const auto &atom = processorById("Atom (45)");
    auto small = PipelineConfig::of(atom, atom.stockClockGhz);
    auto big = small;
    big.inOrder = false;
    big.windowSize = 128;

    PipelineSim memSmall(small, levelsOf(atom));
    PipelineSim memBig(big, levelsOf(atom));
    const double mcfSmall =
        memSmall.run(benchmarkByName("mcf"), 200000, 5).ipc;
    const double mcfBig =
        memBig.run(benchmarkByName("mcf"), 200000, 5).ipc;
    EXPECT_GT(mcfBig, 1.2 * mcfSmall);

    // And the out-of-order window also unserializes the frequent
    // short L1-latency waits of compute-bound code.
    PipelineSim cpuSmall(small, levelsOf(atom));
    PipelineSim cpuBig(big, levelsOf(atom));
    const double hmmerSmall =
        cpuSmall.run(benchmarkByName("hmmer"), 200000, 5).ipc;
    const double hmmerBig =
        cpuBig.run(benchmarkByName("hmmer"), 200000, 5).ipc;
    EXPECT_GT(hmmerBig, 1.1 * hmmerSmall);
}

TEST(PipelineSim, MemoryBoundHasHigherMemWaitShare)
{
    const auto &i7 = processorById("i7 (45)");
    PipelineSim pipeMem(PipelineConfig::of(i7, 2.667), levelsOf(i7));
    PipelineSim pipeCpu(PipelineConfig::of(i7, 2.667), levelsOf(i7));
    const auto mem = pipeMem.run(benchmarkByName("mcf"), 200000, 5);
    const auto cpu = pipeCpu.run(benchmarkByName("hmmer"), 200000, 5);
    EXPECT_GT(mem.memStallShare, cpu.memStallShare - 0.02);
}

} // namespace lhr
