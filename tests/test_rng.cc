/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hh"

namespace lhr
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(10);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(12);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(13);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(14);
    EXPECT_DEATH(rng.below(0), "below");
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(15);
    Rng child = parent.fork();
    // Child stream should not coincide with the parent's continued
    // stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(16), b(16);
    Rng ca = a.fork(), cb = b.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(ca.next(), cb.next());
}

/** Property sweep: moments hold across many seeds. */
class RngSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngSeedSweep, UniformMeanNearHalf)
{
    Rng rng(GetParam());
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, GaussianSymmetry)
{
    Rng rng(GetParam());
    int positive = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.gaussian() > 0.0)
            ++positive;
    EXPECT_NEAR(positive / static_cast<double>(n), 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ull, 42ull, 1337ull,
                                           0xdeadbeefull, 0xC0FFEEull,
                                           999999937ull));

} // namespace lhr
