/**
 * @file
 * Tests for the 61-benchmark database (paper Table 1).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "workload/benchmark.hh"

namespace lhr
{

TEST(Workload, SixtyOneBenchmarks)
{
    EXPECT_EQ(allBenchmarks().size(), 61u);
}

TEST(Workload, GroupSizesMatchTable1)
{
    EXPECT_EQ(benchmarksInGroup(Group::NativeNonScalable).size(), 27u);
    EXPECT_EQ(benchmarksInGroup(Group::NativeScalable).size(), 11u);
    EXPECT_EQ(benchmarksInGroup(Group::JavaNonScalable).size(), 18u);
    EXPECT_EQ(benchmarksInGroup(Group::JavaScalable).size(), 5u);
}

TEST(Workload, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &bench : allBenchmarks())
        EXPECT_TRUE(names.insert(bench.name).second) << bench.name;
}

TEST(Workload, LookupByName)
{
    const Benchmark &mcf = benchmarkByName("mcf");
    EXPECT_EQ(mcf.group, Group::NativeNonScalable);
    EXPECT_EQ(mcf.suite, Suite::SpecInt2006);
    EXPECT_DOUBLE_EQ(mcf.refTimeSec, 894.0);
    EXPECT_DEATH(benchmarkByName("doom3"), "unknown benchmark");
}

TEST(Workload, Table1ReferenceTimesSpotChecks)
{
    EXPECT_DOUBLE_EQ(benchmarkByName("gamess").refTimeSec, 3505.0);
    EXPECT_DOUBLE_EQ(benchmarkByName("x264").refTimeSec, 265.0);
    EXPECT_DOUBLE_EQ(benchmarkByName("mtrt").refTimeSec, 0.8);
    EXPECT_DOUBLE_EQ(benchmarkByName("eclipse").refTimeSec, 50.5);
    EXPECT_DOUBLE_EQ(benchmarkByName("pjbb2005").refTimeSec, 10.6);
}

TEST(Workload, LanguageFollowsGroup)
{
    for (const auto &bench : allBenchmarks()) {
        const bool javaGroup = bench.group == Group::JavaNonScalable ||
            bench.group == Group::JavaScalable;
        EXPECT_EQ(bench.language() == Language::Java, javaGroup)
            << bench.name;
    }
}

TEST(Workload, ScalableClassification)
{
    EXPECT_TRUE(benchmarkByName("fluidanimate").scalable());
    EXPECT_TRUE(benchmarkByName("xalan").scalable());
    EXPECT_FALSE(benchmarkByName("mcf").scalable());
    EXPECT_FALSE(benchmarkByName("db").scalable());
}

TEST(Workload, NativeBenchmarksHaveNoJvmCharacteristics)
{
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() == Language::Native) {
            EXPECT_DOUBLE_EQ(bench.jvmServiceFraction, 0.0)
                << bench.name;
            EXPECT_DOUBLE_EQ(bench.gcInterferenceRelief, 0.0)
                << bench.name;
        }
    }
}

TEST(Workload, ScalableBenchmarksSpawnPerContextThreads)
{
    for (const auto *bench : benchmarksInGroup(Group::NativeScalable))
        EXPECT_EQ(bench->appThreads, 0) << bench->name;
    for (const auto *bench : benchmarksInGroup(Group::JavaScalable))
        EXPECT_EQ(bench->appThreads, 0) << bench->name;
}

TEST(Workload, PrescribedInvocationsFollowSuite)
{
    EXPECT_EQ(benchmarkByName("mcf").prescribedInvocations(), 3);
    EXPECT_EQ(benchmarkByName("ferret").prescribedInvocations(), 5);
    EXPECT_EQ(benchmarkByName("xalan").prescribedInvocations(), 20);
    EXPECT_EQ(benchmarkByName("compress").prescribedInvocations(), 20);
}

TEST(Workload, JavaReferenceTimesAreShort)
{
    // Table 1: native workloads run for hundreds to thousands of
    // seconds, Java for seconds (section 2.6 discusses this).
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() == Language::Java)
            EXPECT_LT(bench.refTimeSec, 60.0) << bench.name;
        else
            EXPECT_GT(bench.refTimeSec, 200.0) << bench.name;
    }
}

TEST(Workload, GroupNamesMatchPaper)
{
    EXPECT_EQ(groupName(Group::NativeNonScalable),
              "Native Non-scalable");
    EXPECT_EQ(groupName(Group::JavaScalable), "Java Scalable");
    EXPECT_EQ(allGroups().size(), 4u);
}

TEST(Workload, SuiteNames)
{
    EXPECT_EQ(suiteName(Suite::SpecInt2006), "SPEC CINT2006");
    EXPECT_EQ(suiteName(Suite::Parsec), "PARSEC");
    EXPECT_EQ(suiteName(Suite::Pjbb2005), "pjbb2005");
}

/** Property sweep: every benchmark's parameters are physical. */
class BenchmarkParamSweep
    : public ::testing::TestWithParam<const Benchmark *>
{
};

TEST_P(BenchmarkParamSweep, ParametersInRange)
{
    const Benchmark &b = *GetParam();
    EXPECT_GT(b.refTimeSec, 0.0);
    EXPECT_GT(b.ilp, 0.5);
    EXPECT_LE(b.ilp, 4.0);
    EXPECT_GT(b.memAccessPerInstr, 0.0);
    EXPECT_LT(b.memAccessPerInstr, 1.0);
    EXPECT_GT(b.miss.mpki32, 0.0);
    EXPECT_GE(b.miss.mpki32, b.miss.coldMpki);
    EXPECT_GT(b.miss.beta, 0.0);
    EXPECT_LT(b.miss.beta, 1.0);
    EXPECT_GT(b.miss.workingSetKb, 32.0);
    EXPECT_GE(b.branchMispKi, 0.0);
    EXPECT_LT(b.branchMispKi, 30.0);
    EXPECT_GE(b.fpShare, 0.0);
    EXPECT_LE(b.fpShare, 1.0);
    EXPECT_GE(b.appThreads, 0);
    EXPECT_GE(b.parallelFraction, 0.0);
    EXPECT_LT(b.parallelFraction, 1.0);
    EXPECT_GE(b.jvmServiceFraction, 0.0);
    EXPECT_LT(b.jvmServiceFraction, 0.5);
    EXPECT_GE(b.gcInterferenceRelief, 0.0);
    EXPECT_LT(b.gcInterferenceRelief, 0.3);
    EXPECT_GE(b.phaseVariability, 0.0);
    EXPECT_LE(b.phaseVariability, 0.3);
    EXPECT_GT(b.instructionsB(), 0.0);
}

TEST_P(BenchmarkParamSweep, ScalableImpliesParallelFraction)
{
    const Benchmark &b = *GetParam();
    if (b.scalable()) {
        EXPECT_GT(b.parallelFraction, 0.7) << b.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkParamSweep,
    ::testing::ValuesIn([] {
        std::vector<const Benchmark *> all;
        for (const auto &bench : allBenchmarks())
            all.push_back(&bench);
        return all;
    }()),
    [](const ::testing::TestParamInfo<const Benchmark *> &info) {
        std::string name = info.param->name;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace lhr
