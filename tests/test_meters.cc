/**
 * @file
 * Tests for the on-chip structure power meters (the paper's
 * recommended instrumentation).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "power/meters.hh"

namespace lhr
{

namespace
{

PowerBreakdown
breakdown(double cores, double llc, double uncore)
{
    PowerBreakdown pb{};
    pb.coreDynW = cores * 0.8;
    pb.leakW = cores * 0.2;
    pb.llcW = llc;
    pb.uncoreW = uncore;
    pb.junctionC = 60.0;
    return pb;
}

} // namespace

TEST(Meters, DomainNames)
{
    EXPECT_STREQ(meterDomainName(MeterDomain::Package), "package");
    EXPECT_STREQ(meterDomainName(MeterDomain::Cores), "cores");
    EXPECT_STREQ(meterDomainName(MeterDomain::Llc), "llc");
    EXPECT_STREQ(meterDomainName(MeterDomain::Uncore), "uncore");
}

TEST(Meters, StartAtZero)
{
    const StructureMeters meters;
    for (auto domain : {MeterDomain::Package, MeterDomain::Cores,
                        MeterDomain::Llc, MeterDomain::Uncore}) {
        EXPECT_EQ(meters.raw(domain), 0u);
        EXPECT_DOUBLE_EQ(meters.energyJ(domain), 0.0);
    }
}

TEST(Meters, AccumulateEnergy)
{
    StructureMeters meters;
    meters.deposit(breakdown(20.0, 3.0, 7.0), 2.0);
    EXPECT_NEAR(meters.energyJ(MeterDomain::Package), 60.0, 0.001);
    EXPECT_NEAR(meters.energyJ(MeterDomain::Cores), 40.0, 0.001);
    EXPECT_NEAR(meters.energyJ(MeterDomain::Llc), 6.0, 0.001);
    EXPECT_NEAR(meters.energyJ(MeterDomain::Uncore), 14.0, 0.001);
}

TEST(Meters, DomainsSumToPackage)
{
    StructureMeters meters;
    for (int i = 0; i < 100; ++i)
        meters.deposit(breakdown(15.0 + i * 0.1, 2.0, 5.0), 0.05);
    const double parts = meters.energyJ(MeterDomain::Cores) +
        meters.energyJ(MeterDomain::Llc) +
        meters.energyJ(MeterDomain::Uncore);
    EXPECT_NEAR(meters.energyJ(MeterDomain::Package), parts, 0.01);
}

TEST(Meters, FractionalUnitsCarryOver)
{
    // Depositing tiny energies must not lose counts to truncation.
    StructureMeters meters(1.0); // 1 J per count
    for (int i = 0; i < 1000; ++i)
        meters.deposit(breakdown(0.1, 0.0, 0.0), 1.0);
    // 0.1 W cores * 1000 s = 100 J, despite each deposit being
    // a fraction of one count.
    EXPECT_NEAR(meters.energyJ(MeterDomain::Cores), 100.0, 1.0);
}

TEST(Meters, WrapAwareDifferencing)
{
    const StructureMeters meters(0.5);
    // A reading that wrapped: before near the top, after past zero.
    const uint32_t before = 0xFFFFFFF0u;
    const uint32_t after = 0x00000010u;
    EXPECT_NEAR(meters.energyBetween(before, after), 0x20 * 0.5,
                1e-9);
    EXPECT_NEAR(meters.averagePowerW(before, after, 2.0),
                0x20 * 0.5 / 2.0, 1e-9);
}

TEST(Meters, InvalidInputsPanic)
{
    EXPECT_DEATH(StructureMeters(0.0), "energy unit");
    StructureMeters meters;
    EXPECT_DEATH(meters.deposit(breakdown(1, 1, 1), -1.0), "negative");
    EXPECT_DEATH(meters.averagePowerW(0, 10, 0.0), "interval");
}

TEST(Meters, MeterRunMatchesHallSensor)
{
    // The package meter and the external sensor must agree on every
    // benchmark (within sensor error) — the meters are the better
    // version of the same measurement.
    ExperimentRunner runner(2025);
    const auto cfg = stockConfig(processorById("i5 (32)"));
    for (const char *name : {"mcf", "fluidanimate", "xalan", "db"}) {
        const auto &bench = benchmarkByName(name);
        double duration = 0.0;
        const auto meters = runner.meterRun(cfg, bench, &duration);
        ASSERT_GT(duration, 0.0);
        const double meterW =
            meters.energyJ(MeterDomain::Package) / duration;
        const double hallW = runner.measure(cfg, bench).powerW;
        EXPECT_NEAR(hallW, meterW, 0.08 * meterW) << name;
    }
}

TEST(Meters, AttributionFollowsWorkload)
{
    // A cores-heavy FP kernel attributes more to the cores domain
    // than a memory-bound pointer chaser.
    ExperimentRunner runner(2026);
    const auto cfg = stockConfig(processorById("i7 (45)"));
    auto coresShare = [&](const char *name) {
        const auto meters =
            runner.meterRun(cfg, benchmarkByName(name));
        return meters.energyJ(MeterDomain::Cores) /
            meters.energyJ(MeterDomain::Package);
    };
    EXPECT_GT(coresShare("fluidanimate"), coresShare("omnetpp"));
}

} // namespace lhr
