/**
 * @file
 * Tests for Pareto dominance and frontier extraction.
 */

#include <gtest/gtest.h>

#include "stats/pareto.hh"
#include "util/rng.hh"

namespace lhr
{

TEST(Pareto, DominanceBasics)
{
    const ParetoPoint fastCheap{"a", 2.0, 1.0};
    const ParetoPoint slowCostly{"b", 1.0, 2.0};
    const ParetoPoint fastCostly{"c", 2.0, 2.0};
    EXPECT_TRUE(dominates(fastCheap, slowCostly));
    EXPECT_TRUE(dominates(fastCheap, fastCostly));
    EXPECT_FALSE(dominates(slowCostly, fastCheap));
    EXPECT_FALSE(dominates(fastCostly, fastCheap));
}

TEST(Pareto, EqualPointsDoNotDominateEachOther)
{
    const ParetoPoint a{"a", 1.0, 1.0};
    const ParetoPoint b{"b", 1.0, 1.0};
    EXPECT_FALSE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    const auto frontier = paretoFrontier({a, b});
    EXPECT_EQ(frontier.size(), 2u);
}

TEST(Pareto, SimpleFrontier)
{
    const std::vector<ParetoPoint> points = {
        {"slow-efficient", 1.0, 0.5},
        {"fast-hungry", 4.0, 2.0},
        {"dominated", 0.9, 0.6},
        {"middle", 2.0, 1.0},
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].label, "slow-efficient");
    EXPECT_EQ(frontier[1].label, "middle");
    EXPECT_EQ(frontier[2].label, "fast-hungry");
}

TEST(Pareto, SinglePointIsItsOwnFrontier)
{
    const auto frontier = paretoFrontier({{"only", 1.0, 1.0}});
    ASSERT_EQ(frontier.size(), 1u);
}

TEST(Pareto, EmptyInputYieldsEmptyFrontier)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
}

TEST(Pareto, OneDominatorCollapsesTheFrontier)
{
    // One config better on both axes than every other: the frontier
    // is exactly that point, whatever the input order.
    const std::vector<ParetoPoint> points = {
        {"worst", 0.5, 4.0},
        {"king", 5.0, 0.5},
        {"mediocre", 2.0, 2.0},
        {"close", 4.9, 0.6},
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].label, "king");
}

TEST(Pareto, TiesOnOneAxisKeepOnlyTheBetterOtherAxis)
{
    // Equal performance: the cheaper point dominates the other.
    const auto byEnergy = paretoFrontier(
        {{"cheap", 2.0, 1.0}, {"costly", 2.0, 3.0}});
    ASSERT_EQ(byEnergy.size(), 1u);
    EXPECT_EQ(byEnergy[0].label, "cheap");

    // Equal energy: the faster point dominates the other.
    const auto byPerf = paretoFrontier(
        {{"slow", 1.0, 2.0}, {"fast", 3.0, 2.0}});
    ASSERT_EQ(byPerf.size(), 1u);
    EXPECT_EQ(byPerf[0].label, "fast");

    // A tie on one axis between otherwise-incomparable points keeps
    // both: neither strictly improves the other.
    const auto mixed = paretoFrontier(
        {{"a", 2.0, 1.0}, {"b", 2.0, 1.0}, {"c", 3.0, 2.0}});
    EXPECT_EQ(mixed.size(), 3u);
}

TEST(Pareto, FrontierSortedByPerformance)
{
    const std::vector<ParetoPoint> points = {
        {"c", 3.0, 3.0}, {"a", 1.0, 1.0}, {"b", 2.0, 2.0},
    };
    const auto frontier = paretoFrontier(points);
    for (size_t i = 1; i < frontier.size(); ++i)
        EXPECT_LE(frontier[i - 1].performance, frontier[i].performance);
}

/** Property sweep over random point clouds. */
class ParetoRandomSweep : public ::testing::TestWithParam<uint64_t>
{
  protected:
    std::vector<ParetoPoint>
    randomCloud(uint64_t seed, size_t n)
    {
        Rng rng(seed);
        std::vector<ParetoPoint> points;
        for (size_t i = 0; i < n; ++i) {
            points.push_back({"p" + std::to_string(i),
                              rng.uniform(0.1, 10.0),
                              rng.uniform(0.1, 10.0)});
        }
        return points;
    }
};

TEST_P(ParetoRandomSweep, NoFrontierMemberIsDominated)
{
    const auto points = randomCloud(GetParam(), 120);
    const auto frontier = paretoFrontier(points);
    for (const auto &member : frontier)
        for (const auto &other : points)
            ASSERT_FALSE(dominates(other, member));
}

TEST_P(ParetoRandomSweep, EveryNonMemberIsDominated)
{
    const auto points = randomCloud(GetParam(), 120);
    const auto frontier = paretoFrontier(points);
    auto onFrontier = [&](const ParetoPoint &pt) {
        for (const auto &member : frontier)
            if (member.label == pt.label)
                return true;
        return false;
    };
    for (const auto &pt : points) {
        if (onFrontier(pt))
            continue;
        bool dominated = false;
        for (const auto &other : points)
            if (dominates(other, pt))
                dominated = true;
        ASSERT_TRUE(dominated) << pt.label;
    }
}

TEST_P(ParetoRandomSweep, FrontierOfFrontierIsItself)
{
    const auto frontier =
        paretoFrontier(randomCloud(GetParam(), 80));
    const auto again = paretoFrontier(frontier);
    EXPECT_EQ(frontier.size(), again.size());
}

TEST_P(ParetoRandomSweep, EnergyDecreasesAsPerformanceDecreases)
{
    // Along a frontier sorted by ascending performance, energy must
    // be ascending too (otherwise a point would dominate its
    // neighbour).
    const auto frontier =
        paretoFrontier(randomCloud(GetParam(), 150));
    for (size_t i = 1; i < frontier.size(); ++i)
        ASSERT_LE(frontier[i - 1].energy, frontier[i].energy);
}

INSTANTIATE_TEST_SUITE_P(Clouds, ParetoRandomSweep,
                         ::testing::Values(1ull, 7ull, 21ull, 99ull,
                                           12345ull));

} // namespace lhr
