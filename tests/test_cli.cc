/**
 * @file
 * Exit-code and error-path tests of the lhrlab command-line front
 * end, run against the real binary (path baked in by CMake as
 * LHR_LHRLAB_BIN). The contract under test: a command line lhrlab
 * cannot act on exits nonzero with a diagnostic — never the old
 * atoi-style silent success where "--jobs banana" quietly meant
 * something else.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <sys/wait.h>

namespace
{

struct CliResult
{
    int exitCode = -1;
    std::string output; ///< stdout and stderr, interleaved
};

CliResult
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(LHR_LHRLAB_BIN) + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    CliResult result;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        result.output.append(buf, n);
    const int status = pclose(pipe);
    result.exitCode =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

bool
mentions(const CliResult &r, const std::string &needle)
{
    return r.output.find(needle) != std::string::npos;
}

/** Write a small fixture file under gtest's temp dir, return path. */
std::string
writeFile(const std::string &name, const std::string &text)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream os(path, std::ios::trunc);
    os << text;
    EXPECT_TRUE(os.good()) << path;
    return path;
}

const char *const storeHeader =
    "config,benchmark,time_s,time_ci95,power_w,power_ci95\n";

} // namespace

TEST(Cli, HelpExitsZeroWithUsage)
{
    const CliResult r = runCli("help");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(mentions(r, "usage: lhrlab"));
}

TEST(Cli, NoArgumentsExitsTwoWithUsage)
{
    const CliResult r = runCli("");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "usage: lhrlab"));
}

TEST(Cli, UnknownCommandExitsTwoWithUsage)
{
    const CliResult r = runCli("frobnicate");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "unknown command"));
    EXPECT_TRUE(mentions(r, "frobnicate"));
    EXPECT_TRUE(mentions(r, "usage: lhrlab"));
}

TEST(Cli, MalformedSeedExitsTwo)
{
    const CliResult r = runCli("--seed banana list");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--seed"));
    EXPECT_TRUE(mentions(r, "banana"));
}

TEST(Cli, MissingSeedValueExitsTwo)
{
    const CliResult r = runCli("--seed");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--seed needs a value"));
}

TEST(Cli, UnknownRunFormatExitsNonzero)
{
    const CliResult r = runCli("run fig04 --format=yaml");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "unknown format"));
}

TEST(Cli, NonNumericJobsExitsNonzero)
{
    const CliResult r = runCli("run fig04 --jobs banana");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "--jobs"));
}

TEST(Cli, UnknownRunOptionExitsNonzero)
{
    const CliResult r = runCli("run fig04 --frobnicate");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "unknown option"));
}

TEST(Cli, UnknownStudyExitsNonzero)
{
    const CliResult r = runCli("run no_such_study");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "unknown study"));
}

TEST(Cli, UnwritableOutDirExitsNonzero)
{
    // /dev/null is a file: creating a directory under it must fail
    // before any artifact write is attempted.
    const CliResult r =
        runCli("run ablation_faults --format=json --out /dev/null/x");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "cannot create"));
}

TEST(Cli, MultiStudyJsonWithoutOutDirExitsNonzero)
{
    const CliResult r = runCli("run --all --format=json");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "--out"));
}

TEST(Cli, BadMeasureCoresExitsTwo)
{
    const CliResult r =
        runCli("measure \"i7 (45)\" mcf --cores banana");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--cores"));
}

TEST(Cli, OutOfRangeMeasureCoresExitsTwo)
{
    const CliResult r =
        runCli("measure \"i7 (45)\" mcf --cores 99");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--cores"));
}

TEST(Cli, BadSmtValueExitsTwo)
{
    const CliResult r =
        runCli("measure \"i7 (45)\" mcf --smt maybe");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "on|off"));
}

TEST(Cli, BadClockValueExitsTwo)
{
    const CliResult r =
        runCli("measure \"i7 (45)\" mcf --clock fast");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--clock"));
}

TEST(Cli, DanglingOptionValueExitsTwo)
{
    const CliResult r = runCli("measure \"i7 (45)\" mcf --cores");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "needs a value"));
}

TEST(Cli, ListNamesIncludesTheFaultStudy)
{
    const CliResult r = runCli("list --names");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(mentions(r, "ablation_faults"));
}

TEST(Cli, CompareRejectsNegativeTolerance)
{
    const CliResult r = runCli("compare a.csv b.csv -0.5");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "tolerance"));
}

TEST(Cli, CompareMissingFileExitsNonzero)
{
    const CliResult r =
        runCli("compare /no/such/before.csv /no/such/after.csv");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "cannot open"));
}

TEST(Cli, SnapshotRejectsMalformedShardSpec)
{
    const CliResult r = runCli("snapshot out.csv --shard banana");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--shard"));
    EXPECT_TRUE(mentions(r, "banana"));
}

TEST(Cli, SnapshotRejectsShardIndexOutOfRange)
{
    const CliResult r = runCli("snapshot out.csv --shard 4/3");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--shard"));
    EXPECT_TRUE(mentions(r, "4/3"));
}

TEST(Cli, SnapshotRejectsZeroShardIndex)
{
    const CliResult r = runCli("snapshot out.csv --shard 0/3");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "1 <= I <= N"));
}

TEST(Cli, SnapshotRejectsMissingShardValue)
{
    const CliResult r = runCli("snapshot out.csv --shard");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--shard needs a value"));
}

TEST(Cli, SnapshotRejectsNonNumericCheckpoint)
{
    const CliResult r = runCli("snapshot out.csv --checkpoint banana");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_TRUE(mentions(r, "--checkpoint"));
}

TEST(Cli, MergeWithoutInputsExitsNonzero)
{
    const CliResult r = runCli("merge out.csv");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "merge needs"));
}

TEST(Cli, MergeMissingInputExitsNonzero)
{
    const std::string out = testing::TempDir() + "cli_merge_out.csv";
    const CliResult r =
        runCli("merge " + out + " /no/such/shard.csv");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "cannot open"));
}

TEST(Cli, MergeCombinesDisjointShards)
{
    const std::string a = writeFile(
        "cli_merge_a.csv",
        std::string(storeHeader) +
            "atom,gcc,1.000000,0.010000,4.000000,0.100000\n");
    const std::string b = writeFile(
        "cli_merge_b.csv",
        std::string(storeHeader) +
            "i7,gcc,0.500000,0.005000,45.000000,0.900000\n");
    const std::string out = testing::TempDir() + "cli_merge_ab.csv";
    const CliResult r = runCli("merge " + out + " " + a + " " + b);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(mentions(r, "merged 2 stores"));
    EXPECT_TRUE(mentions(r, "2 rows"));
    std::ifstream is(out);
    EXPECT_TRUE(is.good()) << out;
    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(out.c_str());
}

TEST(Cli, MergeConflictingShardsExitsNonzero)
{
    const std::string a = writeFile(
        "cli_conflict_a.csv",
        std::string(storeHeader) +
            "atom,gcc,1.000000,0.010000,4.000000,0.100000\n");
    const std::string b = writeFile(
        "cli_conflict_b.csv",
        std::string(storeHeader) +
            "atom,gcc,2.000000,0.010000,4.000000,0.100000\n");
    const std::string out =
        testing::TempDir() + "cli_conflict_out.csv";
    const CliResult r = runCli("merge " + out + " " + a + " " + b);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(mentions(r, "conflict"));
    std::ifstream is(out);
    EXPECT_FALSE(is.good()) << "conflicting merge must not write "
                            << out;
    std::remove(a.c_str());
    std::remove(b.c_str());
}
