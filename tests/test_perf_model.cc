/**
 * @file
 * Tests for the interval performance model: CPI stacks, SMT
 * composition, multicore scaling, and bandwidth ceilings.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "cpu/perf_model.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }
const ProcessorSpec &atom() { return processorById("Atom (45)"); }
const ProcessorSpec &p4() { return processorById("Pentium4 (130)"); }

double
timeOf(const PerfModel &model, const Benchmark &bench,
       const MachineConfig &cfg, double clock)
{
    return model
        .evaluate(bench, cfg, clock, bench.instructionsB() * 1e9,
                  bench.appThreads)
        .timeSec;
}

} // namespace

TEST(PerfModel, CpiStackComponentsPositive)
{
    const PerfModel model(i7());
    const auto stack =
        model.threadCpi(benchmarkByName("gcc"), 2.667, 1, 1.0);
    EXPECT_GT(stack.base, 0.0);
    EXPECT_GT(stack.branch, 0.0);
    EXPECT_GT(stack.memory, 0.0);
    EXPECT_NEAR(stack.total(),
                stack.base + stack.branch + stack.memory, 1e-12);
    EXPECT_NEAR(stack.ipc(), 1.0 / stack.total(), 1e-12);
}

TEST(PerfModel, MemoryCpiGrowsWithClock)
{
    // Memory latency is fixed in nanoseconds, so cycles grow with
    // clock — the mechanism behind sub-linear clock scaling.
    const PerfModel model(i7());
    const auto &bench = benchmarkByName("mcf");
    const auto slow = model.threadCpi(bench, 1.6, 1, 1.0);
    const auto fast = model.threadCpi(bench, 2.667, 1, 1.0);
    EXPECT_NEAR(fast.memory / slow.memory, 2.667 / 1.6, 1e-9);
    EXPECT_DOUBLE_EQ(fast.base, slow.base);
    EXPECT_DOUBLE_EQ(fast.branch, slow.branch);
}

TEST(PerfModel, MemoryBoundBenchmarkScalesWorseWithClock)
{
    const PerfModel model(i7());
    const auto cfg = withTurbo(stockConfig(i7()), false);
    const auto &memBound = benchmarkByName("mcf");
    const auto &computeBound = benchmarkByName("hmmer");
    const double memGain = timeOf(model, memBound, cfg, 1.6) /
        timeOf(model, memBound, cfg, 2.667);
    const double compGain = timeOf(model, computeBound, cfg, 1.6) /
        timeOf(model, computeBound, cfg, 2.667);
    EXPECT_LT(memGain, compGain);
    EXPECT_GT(memGain, 1.0);
    EXPECT_LT(compGain, 2.667 / 1.6 + 1e-9);
}

TEST(PerfModel, SmtThroughputBetweenOneAndTwoThreads)
{
    const PerfModel model(i7());
    for (const auto &bench : allBenchmarks()) {
        const double one = model.coreIpc(bench, 2.667, 1, 1.0);
        const double two = model.coreIpc(bench, 2.667, 2, 1.0);
        // Per-core throughput with SMT never exceeds 2x a thread
        // running with the same cache sharing, and should not be
        // catastrophically lower than a single thread.
        EXPECT_GT(two, 0.5 * one) << bench.name;
        EXPECT_LE(two, 2.0 * one + 1e-9) << bench.name;
    }
}

TEST(PerfModel, SmtHelpsLessWhenIssueIsSaturated)
{
    const PerfModel model(i7());
    const auto &wide = benchmarkByName("hmmer");   // high ILP
    const auto &narrow = benchmarkByName("omnetpp"); // low ILP
    const double wideGain = model.coreIpc(wide, 2.667, 2, 1.0) /
        model.coreIpc(wide, 2.667, 1, 1.0);
    const double narrowGain = model.coreIpc(narrow, 2.667, 2, 1.0) /
        model.coreIpc(narrow, 2.667, 1, 1.0);
    EXPECT_GT(narrowGain, wideGain);
}

TEST(PerfModel, SingleThreadedCodeIgnoresExtraCores)
{
    const PerfModel model(i7());
    const auto base = withTurbo(withSmt(stockConfig(i7()), false),
                                false);
    const auto &bench = benchmarkByName("mcf");
    const double t1 = timeOf(model, bench, withCores(base, 1), 2.667);
    const double t4 = timeOf(model, bench, withCores(base, 4), 2.667);
    EXPECT_NEAR(t1, t4, 1e-9);
}

TEST(PerfModel, ScalableCodeUsesAllCores)
{
    const PerfModel model(i7());
    const auto base = withTurbo(withSmt(stockConfig(i7()), false),
                                false);
    const auto &bench = benchmarkByName("blackscholes");
    const double t1 = timeOf(model, bench, withCores(base, 1), 2.667);
    const double t4 = timeOf(model, bench, withCores(base, 4), 2.667);
    EXPECT_GT(t1 / t4, 3.0);
    EXPECT_LT(t1 / t4, 4.0);
}

TEST(PerfModel, AmdahlCapsSpeedup)
{
    const PerfModel model(i7());
    const auto base = withTurbo(withSmt(stockConfig(i7()), false),
                                false);
    const auto &bench = benchmarkByName("canneal"); // pf = 0.90
    const double t1 = timeOf(model, bench, withCores(base, 1), 2.667);
    const double t4 = timeOf(model, bench, withCores(base, 4), 2.667);
    const double amdahl = 1.0 / (0.10 + 0.90 / 4.0);
    EXPECT_LT(t1 / t4, amdahl + 1e-9);
}

TEST(PerfModel, BandwidthThrottleEngagesForStreaming)
{
    // A perfectly-streaming parallel kernel (high ILP, heavy cold
    // misses) must saturate the FSB on a quad-core part and be
    // throttled to the sustainable bandwidth.
    Benchmark firehose = benchmarkByName("streamcluster");
    firehose.ilp = 3.5;
    firehose.miss = {60.0, 0.1, 1e9, 50.0};
    firehose.branchMispKi = 0.5;
    const PerfModel model(processorById("C2Q (65)"));
    const auto cfg = stockConfig(processorById("C2Q (65)"));
    const auto result = model.evaluate(
        firehose, cfg, 2.4, firehose.instructionsB() * 1e9, 0);
    EXPECT_LT(result.bandwidthThrottle, 1.0);
    // Delivered traffic stays at or below the DRAM's capability.
    EXPECT_LE(result.dramGBs,
              processorById("C2Q (65)").memory().bandwidthGBs + 0.1);
}

TEST(PerfModel, ComputeBoundNeverThrottles)
{
    const PerfModel model(i7());
    const auto cfg = withTurbo(stockConfig(i7()), false);
    const auto &bench = benchmarkByName("swaptions");
    const auto result = model.evaluate(
        bench, cfg, 2.667, bench.instructionsB() * 1e9, 0);
    EXPECT_DOUBLE_EQ(result.bandwidthThrottle, 1.0);
}

TEST(PerfModel, UtilizationsAreFractions)
{
    const PerfModel model(i7());
    const auto cfg = withTurbo(stockConfig(i7()), false);
    for (const auto &bench : allBenchmarks()) {
        const auto result = model.evaluate(
            bench, cfg, 2.667, bench.instructionsB() * 1e9,
            bench.appThreads);
        ASSERT_EQ(result.coreUtilization.size(), 4u);
        for (double util : result.coreUtilization) {
            ASSERT_GE(util, 0.0) << bench.name;
            ASSERT_LE(util, 1.0) << bench.name;
        }
        ASSERT_GT(result.timeSec, 0.0) << bench.name;
        ASSERT_GE(result.llcActivity, 0.0);
        ASSERT_LE(result.llcActivity, 1.0);
    }
}

TEST(PerfModel, InOrderAtomSlowerPerClockThanNehalem)
{
    const PerfModel nehalem(i7());
    const PerfModel bonnell(atom());
    const auto &bench = benchmarkByName("gcc");
    const double nehalemIpc = nehalem.coreIpc(bench, 1.667, 1, 1.0);
    const double atomIpc = bonnell.coreIpc(bench, 1.667, 1, 1.0);
    EXPECT_GT(nehalemIpc, 2.0 * atomIpc);
}

TEST(PerfModel, NetBurstLagsCorePerClock)
{
    const PerfModel netburst(p4());
    const PerfModel core(processorById("C2D (65)"));
    const auto &bench = benchmarkByName("perlbench");
    EXPECT_GT(core.coreIpc(bench, 2.4, 1, 1.0),
              1.5 * netburst.coreIpc(bench, 2.4, 1, 1.0));
}

TEST(PerfModel, MismatchedConfigPanics)
{
    const PerfModel model(i7());
    const auto wrongCfg = stockConfig(atom());
    const auto &bench = benchmarkByName("gcc");
    EXPECT_DEATH(model.evaluate(bench, wrongCfg, 1.667, 1e9, 1),
                 "different processor");
}

TEST(PerfModel, InvalidInputsPanic)
{
    const PerfModel model(i7());
    const auto cfg = stockConfig(i7());
    const auto &bench = benchmarkByName("gcc");
    EXPECT_DEATH(model.evaluate(bench, cfg, 2.667, 0.0, 1), "work");
    EXPECT_DEATH(model.threadCpi(bench, 0.0, 1, 1.0), "clock");
    EXPECT_DEATH(model.threadCpi(bench, 2.667, 0, 1.0), "sharing");
}

/** Property sweep: core invariants on every (processor, benchmark). */
class PerfSweep : public ::testing::TestWithParam<const ProcessorSpec *>
{
};

TEST_P(PerfSweep, StockExecutionIsSane)
{
    const ProcessorSpec &spec = *GetParam();
    const PerfModel model(spec);
    auto cfg = stockConfig(spec);
    cfg.turboEnabled = false;
    for (const auto &bench : allBenchmarks()) {
        const auto result = model.evaluate(
            bench, cfg, cfg.clockGhz, bench.instructionsB() * 1e9,
            bench.appThreads);
        ASSERT_GT(result.timeSec, 0.0) << bench.name;
        ASSERT_GT(result.aggregateIps, 1e6) << bench.name;
        ASSERT_LE(result.coresUsed, cfg.enabledCores) << bench.name;
        ASSERT_GE(result.bandwidthThrottle, 0.05) << bench.name;
        ASSERT_LE(result.bandwidthThrottle, 1.0) << bench.name;
    }
}

TEST_P(PerfSweep, MoreClockNeverHurts)
{
    const ProcessorSpec &spec = *GetParam();
    const PerfModel model(spec);
    auto cfg = stockConfig(spec);
    cfg.turboEnabled = false;
    const auto &bench = benchmarkByName("xalancbmk");
    double prev = 1e99;
    for (double f = spec.fMinGhz; f <= spec.stockClockGhz + 1e-9;
         f += 0.2) {
        const double t = timeOf(model, bench, cfg, f);
        ASSERT_LE(t, prev + 1e-9) << spec.id << " @ " << f;
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProcessors, PerfSweep,
    ::testing::ValuesIn([] {
        std::vector<const ProcessorSpec *> all;
        for (const auto &spec : allProcessors())
            all.push_back(&spec);
        return all;
    }()),
    [](const ::testing::TestParamInfo<const ProcessorSpec *> &info) {
        std::string name = info.param->id;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace lhr
