// Clean fixture body: handled Status results, a justified inline
// suppression, and a justified allow-next-line suppression.

#include <unordered_map>

#include "good.hh"

// lhrlint:allow-next-line(det-unordered): lookup-only cache, never iterated
static std::unordered_map<int, int> lookupOnly;

bool
handleEverything()
{
    const Status saved = saveEverything("grid.csv");
    if (!saved.ok())
        return false;
    // Explicit discard with a reason reads as intent, not a leak.
    (void)mergeStores("a.csv", "b.csv"); // best-effort merge
    return lookupOnly.count(3) == 0;     // lhrlint:allow(det-unordered): lookup-only
}
