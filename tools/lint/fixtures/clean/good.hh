// Clean fixture: the same shapes as the dirty tree, written the way
// the repo's invariants demand — guarded header, no leaked
// namespace, results handled, and every remaining rule hit either
// suppressed inline with a justification or covered by
// clean.allow. lhrlint_fixture_clean requires exit 0 here.

#ifndef LHRLINT_FIXTURE_GOOD_HH
#define LHRLINT_FIXTURE_GOOD_HH

#include <string>

struct Status
{
    bool ok() const { return true; }
};

Status saveEverything(const std::string &path);
Status mergeStores(const std::string &a, const std::string &b);

#endif // LHRLINT_FIXTURE_GOOD_HH
