// Injected-violation fixture: a header with no include guard, a
// leaked namespace, and a Status-returning API whose results the
// .cc file discards. Every line here exists to keep lhrlint honest —
// the lhrlint_fixture_dirty ctest (and the CI lint job) require a
// nonzero exit on this tree.

#include <string>

using namespace std;

struct Status
{
    bool ok() const { return true; }
};

Status saveEverything(const string &path);
Status mergeStores(const string &a, const string &b);
