// Injected-violation fixture body: discarded Status results, every
// determinism sin at once, a raw float compare, and a bare
// suppression without a justification.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

#include "violations.hh"

double
entropySoup()
{
    std::random_device device;            // det-random
    std::srand(device());                 // det-random
    const double r = std::rand() / 2.0;   // det-random
    const auto t0 = std::chrono::steady_clock::now();  // det-clock
    const std::time_t now = std::time(nullptr);        // det-clock
    std::unordered_map<int, double> order;             // det-unordered
    order[static_cast<int>(now)] = r;
    double sum = 0.0;
    for (const auto &entry : order)
        sum += entry.second;
    if (sum == 1.0)                        // float-compare
        sum += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return sum;  // lhrlint:allow(det-clock)
}

void
discardEverything()
{
    saveEverything("grid.csv");            // no-discard
    mergeStores("a.csv", "b.csv");         // no-discard
}
