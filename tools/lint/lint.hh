/**
 * @file
 * lhrlint — the repo's project-invariant static analyzer.
 *
 * A token-level C++ scanner (no libclang) that enforces the written
 * determinism and error-discipline contracts of this laboratory as
 * named, suppressible rules. The golden-hash tests and sanitizer CI
 * jobs catch these bug classes *dynamically* when a test happens to
 * sample them; lhrlint catches them at lint time, before a stray
 * wall-clock read or a silently discarded Status ever reaches a
 * thousand-node sweep.
 *
 * Rule catalog (see DESIGN.md §10 for the policy discussion):
 *
 *   no-discard        call to a Status/Expected-returning function
 *                     whose result is ignored as a whole statement
 *   det-random        rand()/srand()/std::random_device and friends
 *                     (randomness must come from util/rng, seeded by
 *                     the experiment key)
 *   det-clock         time()/clock_gettime()/std::chrono::*_clock —
 *                     wall-clock reads are only legal in bench/ and
 *                     the perf-compare layer
 *   det-unordered     std::unordered_map/set use — iteration order
 *                     is unspecified and can leak into output;
 *                     lookup-only uses carry a justified allow
 *   float-compare     raw ==/!= against a floating-point literal —
 *                     use the util/fp.hh helpers (nearlyEqual /
 *                     exactZero / exactlyEqual) so intent is named
 *   header-guard      headers must open with #pragma once or an
 *                     #ifndef/#define guard
 *   using-namespace-header
 *                     `using namespace` in a header leaks into every
 *                     includer
 *   bare-allow        an lhrlint:allow suppression without a
 *                     justification (or naming an unknown rule)
 *
 * Suppression forms (the justification after ':' is mandatory —
 * a bare allow is itself a finding, and not an inline-suppressible
 * one):
 *
 *   code;  // lhrlint:allow(rule-id): why this is safe
 *   // lhrlint:allow-next-line(rule-id): why this is safe
 *
 * plus a checked-in allowlist file (default tools/lint/lhrlint.allow)
 * of `rule-id path-prefix  # justification` lines for whole files or
 * directories (e.g. det-clock in bench/).
 *
 * The scanner works on two synchronized views of each file: a *code
 * view* with comments and string/char-literal bodies blanked (rules
 * never fire inside prose or data) and a *comment view* with strings
 * blanked but comments kept (suppressions live in comments; a
 * suppression inside a string literal is not a suppression).
 */

#ifndef LHRLINT_LINT_HH
#define LHRLINT_LINT_HH

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

namespace lhrlint
{

/** One reported violation: file:line: rule-id: message. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    /** The canonical one-line rendering. */
    std::string toString() const;
};

/** One allowlist entry: suppress `rule` under `pathPrefix`. */
struct AllowEntry
{
    std::string rule;       ///< rule id, or "*" for every rule
    std::string pathPrefix; ///< relative path prefix, e.g. "bench/"
};

/** Everything a lint pass needs besides the file contents. */
struct Config
{
    /** File/directory-scoped suppressions (lhrlint.allow). */
    std::vector<AllowEntry> allow;

    /**
     * Functions whose return value must not be discarded. Seeded by
     * collectNodiscard() scanning the tree for Status/Expected<T>
     * declarations before any file is linted.
     */
    std::set<std::string> nodiscard;
};

/** Every rule id, in catalog order. */
const std::vector<std::string> &allRuleIds();

/** Whether `rule` names a rule in the catalog. */
bool isKnownRule(const std::string &rule);

/**
 * The two synchronized views of one file plus the line table. Both
 * views have exactly the input's length and newline positions, so
 * one offset->line mapping serves raw text and both views.
 */
struct SourceViews
{
    std::string code;     ///< comments + literal bodies blanked
    std::string comments; ///< literal bodies blanked, comments kept
    std::vector<size_t> lineStarts;

    /** 1-based line of a character offset. */
    int lineAt(size_t offset) const;
};

/** Build the views (handles //, block comments, raw strings). */
SourceViews makeViews(const std::string &text);

/**
 * First pass: record every function declared or defined with a
 * Status or Expected<T> return type in `text` into `out`. Matching
 * is by name (a token scanner has no overload resolution), which is
 * exactly as precise as the repo's naming discipline — and a false
 * positive is one justified suppression away.
 */
void collectNodiscard(const std::string &text,
                      std::set<std::string> &out);

/**
 * Lint one file's contents. `path` is the relative path used in
 * findings and matched against the allowlist. Inline suppressions
 * and the config allowlist are already applied; bare-allow findings
 * (missing justification / unknown rule) are appended and cannot be
 * inline-suppressed.
 */
std::vector<Finding> lintText(const std::string &path,
                              const std::string &text,
                              const Config &config);

/**
 * Parse an allowlist file. Each non-comment line is
 *
 *   rule-id path-prefix  # justification
 *
 * A line with an unknown rule id or without a ` # justification`
 * tail is reported as a bare-allow finding against the allowlist
 * file itself. Returns false only on a structurally empty/garbage
 * line (the finding is still emitted).
 */
void parseAllowlist(const std::string &path, const std::string &text,
                    Config &config, std::vector<Finding> &findings);

/**
 * Walk `roots` (files or directories; directories recurse over
 * .cc/.hh/.h/.inl), run the nodiscard collection pass, lint every
 * file, and return the findings sorted by (file, line, rule).
 * On an unreadable path, sets *error and returns empty.
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &roots,
                               Config config, std::string *error);

/**
 * The lhrlint CLI: `lhrlint [--allowlist FILE] [--list-rules] PATH...`.
 * Findings print to `out`, the summary and errors to `err`.
 * Exit code 0 = clean, 1 = findings, 2 = usage or I/O error.
 */
int runLhrlint(const std::vector<std::string> &args, std::ostream &out,
               std::ostream &err);

} // namespace lhrlint

#endif // LHRLINT_LINT_HH
