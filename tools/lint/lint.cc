#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace lhrlint
{

namespace
{

const char *const ruleIds[] = {
    "no-discard",   "det-random",   "det-clock",
    "det-unordered", "float-compare", "header-guard",
    "using-namespace-header", "bare-allow",
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c));
}

size_t
skipWs(const std::string &s, size_t i)
{
    while (i < s.size() && isSpace(s[i]))
        ++i;
    return i;
}

/** Identifier starting at i, or empty. */
std::string
identAt(const std::string &s, size_t i)
{
    if (i >= s.size() || !isIdentChar(s[i]) ||
        std::isdigit(static_cast<unsigned char>(s[i])))
        return "";
    size_t e = i;
    while (e < s.size() && isIdentChar(s[e]))
        ++e;
    return s.substr(i, e - i);
}

/** Is s[pos..pos+name.size()) the whole identifier `name`? */
bool
wholeIdentAt(const std::string &s, size_t pos, const std::string &name)
{
    if (pos > 0 && isIdentChar(s[pos - 1]))
        return false;
    const size_t end = pos + name.size();
    if (end < s.size() && isIdentChar(s[end]))
        return false;
    return true;
}

bool
hasSuffix(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return hasSuffix(path, ".hh") || hasSuffix(path, ".h");
}

bool
isInlinePath(const std::string &path)
{
    return hasSuffix(path, ".inl");
}

std::string
normalizePath(const std::string &path)
{
    std::string p = path;
    while (p.rfind("./", 0) == 0)
        p.erase(0, 2);
    return p;
}

/**
 * A C++ floating-point literal token (after the lexer has isolated
 * it): digits with a '.' or an exponent, optional f/F/l/L suffix.
 * "a.b", "100", and "0x1p3" are not (member access, integer, and a
 * hex float nobody in this tree writes).
 */
bool
isFloatLiteral(std::string tok)
{
    while (!tok.empty() &&
           (tok.back() == 'f' || tok.back() == 'F' ||
            tok.back() == 'l' || tok.back() == 'L'))
        tok.pop_back();
    if (tok.empty() || tok.rfind("0x", 0) == 0 || tok.rfind("0X", 0) == 0)
        return false;
    bool digit = false, dot = false, exponent = false;
    for (size_t i = 0; i < tok.size(); ++i) {
        const char c = tok[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c == '.') {
            dot = true;
        } else if (c == 'e' || c == 'E') {
            exponent = true;
        } else if (c == '+' || c == '-') {
            // Only legal right after an exponent marker.
            if (i == 0 || (tok[i - 1] != 'e' && tok[i - 1] != 'E'))
                return false;
        } else {
            return false;
        }
    }
    return digit && (dot || exponent);
}

/** Lines (1-based index 0 unused) of one view, split on '\n'. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines(1); // [0] unused
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    lines.push_back(current);
    return lines;
}

/** Raw-text line starts with '#' (preprocessor), ignoring blanks. */
bool
isPreprocessorLine(const std::string &line)
{
    const size_t i = skipWs(line, 0);
    return i < line.size() && line[i] == '#';
}

struct DetNeedle
{
    const char *name;
    bool requiresCall; ///< only a finding when followed by '('
    const char *rule;
    const char *message;
};

const DetNeedle detNeedles[] = {
    {"rand", true, "det-random",
     "rand() is seeded process-globally; draw from util/rng streams "
     "derived from the experiment key"},
    {"srand", true, "det-random",
     "srand() reseeds process-global state; use util/rng"},
    {"drand48", true, "det-random",
     "drand48() is nondeterministic across runs; use util/rng"},
    {"random_device", false, "det-random",
     "std::random_device draws entropy the next run cannot "
     "reproduce; use util/rng seeded from the experiment key"},
    {"random_shuffle", false, "det-random",
     "std::random_shuffle uses unspecified randomness; shuffle with "
     "an explicit util/rng stream"},
    {"time", true, "det-clock",
     "time() reads the wall clock; results must not depend on when "
     "they are computed"},
    {"clock", true, "det-clock",
     "clock() reads process time; results must not depend on "
     "execution speed"},
    {"clock_gettime", true, "det-clock",
     "clock_gettime() reads a real clock; timing is only legal in "
     "bench/ and the perf-compare layer"},
    {"gettimeofday", true, "det-clock",
     "gettimeofday() reads the wall clock; timing is only legal in "
     "bench/ and the perf-compare layer"},
    {"steady_clock", false, "det-clock",
     "std::chrono::steady_clock makes output depend on execution "
     "speed; timing is only legal in bench/ and the perf-compare "
     "layer"},
    {"system_clock", false, "det-clock",
     "std::chrono::system_clock reads the wall clock; timing is "
     "only legal in bench/ and the perf-compare layer"},
    {"high_resolution_clock", false, "det-clock",
     "std::chrono::high_resolution_clock makes output depend on "
     "execution speed; timing is only legal in bench/ and the "
     "perf-compare layer"},
};

const char *const unorderedNeedles[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

void
scanDeterminism(const SourceViews &views,
                const std::vector<std::string> &rawLines,
                const std::string &path, std::vector<Finding> &out)
{
    const std::string &code = views.code;
    for (const DetNeedle &needle : detNeedles) {
        const std::string name = needle.name;
        for (size_t pos = code.find(name); pos != std::string::npos;
             pos = code.find(name, pos + 1)) {
            if (!wholeIdentAt(code, pos, name))
                continue;
            if (needle.requiresCall) {
                const size_t after = skipWs(code, pos + name.size());
                if (after >= code.size() || code[after] != '(')
                    continue;
            }
            out.push_back({path, views.lineAt(pos), needle.rule,
                           needle.message});
        }
    }
    for (const char *const raw : unorderedNeedles) {
        const std::string name = raw;
        for (size_t pos = code.find(name); pos != std::string::npos;
             pos = code.find(name, pos + 1)) {
            if (!wholeIdentAt(code, pos, name))
                continue;
            const int line = views.lineAt(pos);
            // #include <unordered_map> is not a use; the use is.
            if (line < static_cast<int>(rawLines.size()) &&
                isPreprocessorLine(rawLines[line]))
                continue;
            out.push_back(
                {path, line, "det-unordered",
                 "std::" + name +
                     " iterates in unspecified order; use an ordered "
                     "container, or justify a lookup-only use with "
                     "lhrlint:allow"});
        }
    }
}

void
scanFloatCompare(const SourceViews &views, const std::string &path,
                 std::vector<Finding> &out)
{
    const std::string &code = views.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        const bool eq = code[i] == '=' && code[i + 1] == '=';
        const bool ne = code[i] == '!' && code[i + 1] == '=';
        if (!eq && !ne)
            continue;
        if (eq && i > 0 &&
            (code[i - 1] == '=' || code[i - 1] == '!' ||
             code[i - 1] == '<' || code[i - 1] == '>'))
            continue; // the '=' of !=, <=, >=, ==

        // Left operand token: scan back over one literal/identifier.
        // A '+'/'-' is part of the token only inside an exponent
        // ("2.5e-3"); isFloatLiteral rejects identifiers that merely
        // end in e ("base-3").
        size_t l = i;
        while (l > 0 && isSpace(code[l - 1]))
            --l;
        size_t lstart = l;
        while (lstart > 0 &&
               (isIdentChar(code[lstart - 1]) || code[lstart - 1] == '.' ||
                ((code[lstart - 1] == '+' || code[lstart - 1] == '-') &&
                 lstart >= 2 &&
                 (code[lstart - 2] == 'e' || code[lstart - 2] == 'E'))))
            --lstart;
        const std::string left = code.substr(lstart, l - lstart);

        // Right operand token (optional unary sign, exponent signs).
        size_t r = skipWs(code, i + 2);
        if (r < code.size() && (code[r] == '+' || code[r] == '-'))
            r = skipWs(code, r + 1);
        size_t rend = r;
        while (rend < code.size() &&
               (isIdentChar(code[rend]) || code[rend] == '.' ||
                ((code[rend] == '+' || code[rend] == '-') && rend > r &&
                 (code[rend - 1] == 'e' || code[rend - 1] == 'E'))))
            ++rend;
        const std::string right = code.substr(r, rend - r);

        if (isFloatLiteral(left) || isFloatLiteral(right)) {
            out.push_back(
                {path, views.lineAt(i), "float-compare",
                 "raw " + std::string(eq ? "==" : "!=") +
                     " against a floating-point literal; name the "
                     "intent via util/fp.hh (nearlyEqual, exactZero, "
                     "exactlyEqual)"});
        }
    }
}

/**
 * Expression-statements that call a must-not-discard function and
 * drop the result. Statement starts are positions after ';', '{',
 * '}' (plus file start and an `else`/`do` prefix); at each start we
 * try to parse `name(`, `obj.name(`, `ns::name(`, `p->name(` chains
 * followed by a balanced argument list and a ';'. `return f(...);`,
 * `x = f(...);` and `(void)f(...);` all fail the parse, which is
 * the point. Single-statement if-bodies without braces are the one
 * blind spot; -Werror=unused-result covers those at compile time.
 */
void
scanNoDiscard(const SourceViews &views,
              const std::set<std::string> &nodiscard,
              const std::string &path, std::vector<Finding> &out)
{
    if (nodiscard.empty())
        return;
    const std::string &code = views.code;

    auto tryStatement = [&](size_t start) {
        size_t i = skipWs(code, start);
        // Skip statement-prefix keywords that may precede a call.
        for (;;) {
            const std::string kw = identAt(code, i);
            if (kw == "else" || kw == "do")
                i = skipWs(code, i + kw.size());
            else
                break;
        }
        // Parse a qualifier chain ending in name(. A completed call
        // followed by '.' or '->' continues the chain through the
        // call's return value (p->parent()->save(...)), so only the
        // last call of the chain is the one whose result can die.
        size_t namePos = i;
        for (;;) {
            const std::string name = identAt(code, i);
            if (name.empty())
                return;
            namePos = i;
            size_t k = skipWs(code, i + name.size());
            if (k >= code.size())
                return;
            if (code[k] == '(') {
                // Balanced argument list, then look past it.
                int depth = 0;
                size_t j = k;
                for (; j < code.size(); ++j) {
                    if (code[j] == '(')
                        ++depth;
                    else if (code[j] == ')' && --depth == 0)
                        break;
                }
                if (j >= code.size())
                    return;
                const size_t after = skipWs(code, j + 1);
                if (code.compare(after, 2, "->") == 0) {
                    i = skipWs(code, after + 2);
                    continue;
                }
                if (after < code.size() && code[after] == '.') {
                    i = skipWs(code, after + 1);
                    continue;
                }
                // ';' straight after the final call: the value died.
                if (after < code.size() && code[after] == ';' &&
                    nodiscard.count(name) != 0) {
                    out.push_back(
                        {path, views.lineAt(namePos), "no-discard",
                         "result of '" + name +
                             "' (returns Status/Expected) is "
                             "discarded; propagate it, log it, or "
                             "cast to (void) with a comment"});
                }
                return;
            }
            if (code.compare(k, 2, "::") == 0 ||
                code.compare(k, 2, "->") == 0)
                i = skipWs(code, k + 2);
            else if (code[k] == '.')
                i = skipWs(code, k + 1);
            else
                return;
        }
    };

    tryStatement(0);
    for (size_t i = 0; i < code.size(); ++i) {
        if (code[i] == ';' || code[i] == '{' || code[i] == '}')
            tryStatement(i + 1);
    }
}

void
scanHeaderRules(const SourceViews &views,
                const std::vector<std::string> &rawLines,
                const std::string &path, std::vector<Finding> &out)
{
    const bool header = isHeaderPath(path);
    const bool inl = isInlinePath(path);
    if (!header && !inl)
        return;

    // using-namespace-header: in anything textually included.
    const std::string &code = views.code;
    for (size_t pos = code.find("using"); pos != std::string::npos;
         pos = code.find("using", pos + 1)) {
        if (!wholeIdentAt(code, pos, "using"))
            continue;
        const size_t k = skipWs(code, pos + 5);
        if (identAt(code, k) == "namespace") {
            out.push_back({path, views.lineAt(pos),
                           "using-namespace-header",
                           "'using namespace' in a header leaks the "
                           "namespace into every includer"});
        }
    }

    // header-guard: .inl fragments are textual-include bodies by
    // design (multi-included with different macros) — exempt.
    if (!header)
        return;
    const std::vector<std::string> codeLines = splitLines(code);
    int firstCodeLine = 0;
    for (size_t n = 1; n < codeLines.size(); ++n) {
        if (skipWs(codeLines[n], 0) < codeLines[n].size()) {
            firstCodeLine = static_cast<int>(n);
            break;
        }
    }
    if (firstCodeLine == 0)
        return; // empty header: nothing to guard
    const std::string &first =
        firstCodeLine < static_cast<int>(rawLines.size())
            ? rawLines[firstCodeLine]
            : codeLines[firstCodeLine];
    const size_t t = skipWs(first, 0);
    const bool pragmaOnce = first.compare(t, 12, "#pragma once") == 0;
    bool guarded = false;
    if (first.compare(t, 7, "#ifndef") == 0) {
        // The guard's #define must follow on the next code line.
        for (size_t n = firstCodeLine + 1; n < codeLines.size(); ++n) {
            if (skipWs(codeLines[n], 0) >= codeLines[n].size())
                continue;
            const std::string &next = rawLines[n];
            guarded =
                next.compare(skipWs(next, 0), 7, "#define") == 0;
            break;
        }
    }
    if (!pragmaOnce && !guarded) {
        out.push_back({path, firstCodeLine, "header-guard",
                       "header must open with #pragma once or an "
                       "#ifndef/#define include guard"});
    }
}

/**
 * Suppressions found in the comment view. `sameLine[line]` holds the
 * rules allowed on that line (both forms land here: allow() on its
 * own line and allow-next-line() from the line above).
 */
struct Suppressions
{
    std::map<int, std::set<std::string>> byLine;
};

Suppressions
scanSuppressions(const std::vector<std::string> &commentLines,
                 const std::string &path, std::vector<Finding> &out)
{
    Suppressions sup;
    const std::string tag = "lhrlint:allow";
    for (size_t n = 1; n < commentLines.size(); ++n) {
        const std::string &line = commentLines[n];
        for (size_t pos = line.find(tag); pos != std::string::npos;
             pos = line.find(tag, pos + 1)) {
            size_t i = pos + tag.size();
            int targetLine = static_cast<int>(n);
            if (line.compare(i, 10, "-next-line") == 0) {
                i += 10;
                ++targetLine;
            }
            std::string rule;
            bool wellFormed = false;
            if (i < line.size() && line[i] == '(') {
                const size_t close = line.find(')', i);
                if (close != std::string::npos) {
                    rule = line.substr(i + 1, close - i - 1);
                    // Justification: "): " plus non-space text.
                    const size_t j =
                        skipWs(line, close + 1 < line.size() &&
                                       line[close + 1] == ':'
                                   ? close + 2
                                   : line.size());
                    wellFormed = isKnownRule(rule) && j < line.size();
                }
            }
            if (!wellFormed) {
                out.push_back(
                    {path, static_cast<int>(n), "bare-allow",
                     "suppression must name a known rule and carry a "
                     "justification: lhrlint:allow(rule-id): why"});
            }
            if (!rule.empty() && isKnownRule(rule))
                sup.byLine[targetLine].insert(rule);
        }
    }
    return sup;
}

bool
allowedByConfig(const Config &config, const std::string &path,
                const std::string &rule)
{
    const std::string p = normalizePath(path);
    for (const AllowEntry &entry : config.allow) {
        if (entry.rule != "*" && entry.rule != rule)
            continue;
        if (p.rfind(entry.pathPrefix, 0) == 0)
            return true;
    }
    return false;
}

std::string
readFileOrEmpty(const std::filesystem::path &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *ok = false;
        return "";
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *ok = true;
    return buffer.str();
}

bool
lintableFile(const std::filesystem::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".h" || ext == ".inl";
}

} // namespace

std::string
Finding::toString() const
{
    return file + ":" + std::to_string(line) + ": " + rule + ": " +
        message;
}

const std::vector<std::string> &
allRuleIds()
{
    static const std::vector<std::string> ids(
        std::begin(ruleIds), std::end(ruleIds));
    return ids;
}

bool
isKnownRule(const std::string &rule)
{
    const std::vector<std::string> &ids = allRuleIds();
    return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

int
SourceViews::lineAt(size_t offset) const
{
    const auto it = std::upper_bound(lineStarts.begin(),
                                     lineStarts.end(), offset);
    return static_cast<int>(it - lineStarts.begin());
}

SourceViews
makeViews(const std::string &text)
{
    SourceViews views;
    views.code = text;
    views.comments = text;
    views.lineStarts.push_back(0);

    enum class State
    {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Normal;
    std::string rawDelim;      // the )delim" that ends a raw string
    char prevCode = '\0';      // last unblanked Normal-state char

    auto blankBoth = [&](size_t i) {
        views.code[i] = ' ';
        views.comments[i] = ' ';
    };
    auto blankCode = [&](size_t i) { views.code[i] = ' '; };

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '\n')
            views.lineStarts.push_back(i + 1);

        switch (state) {
        case State::Normal:
            if (c == '/' && i + 1 < text.size() &&
                text[i + 1] == '/') {
                state = State::LineComment;
                blankCode(i);
            } else if (c == '/' && i + 1 < text.size() &&
                       text[i + 1] == '*') {
                state = State::BlockComment;
                blankCode(i);
            } else if (c == '"') {
                // R"delim( ... )delim" — the delimiter may be empty.
                if (prevCode == 'R') {
                    const size_t open = text.find('(', i + 1);
                    if (open != std::string::npos) {
                        rawDelim =
                            ")" + text.substr(i + 1, open - i - 1) +
                            "\"";
                        state = State::RawString;
                        for (size_t k = i; k <= open; ++k)
                            if (text[k] != '\n')
                                blankBoth(k);
                        i = open;
                        prevCode = '\0';
                        continue;
                    }
                }
                state = State::String;
                blankBoth(i);
            } else if (c == '\'' && !isIdentChar(prevCode)) {
                state = State::Char;
                blankBoth(i);
            } else {
                if (!isSpace(c))
                    prevCode = c;
            }
            break;
        case State::LineComment:
            if (c == '\n')
                state = State::Normal;
            else
                blankCode(i);
            break;
        case State::BlockComment:
            if (c == '/' && i > 0 && text[i - 1] == '*') {
                state = State::Normal;
            }
            if (c != '\n')
                blankCode(i);
            break;
        case State::String:
        case State::Char: {
            const char end = state == State::String ? '"' : '\'';
            if (c == '\\' && i + 1 < text.size()) {
                blankBoth(i);
                if (text[i + 1] != '\n')
                    blankBoth(i + 1);
                ++i;
            } else {
                if (c != '\n')
                    blankBoth(i);
                if (c == end)
                    state = State::Normal;
            }
            break;
        }
        case State::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (size_t k = i; k < i + rawDelim.size(); ++k)
                    if (text[k] != '\n')
                        blankBoth(k);
                i += rawDelim.size() - 1;
                state = State::Normal;
            } else if (c != '\n') {
                blankBoth(i);
            }
            break;
        }
    }
    return views;
}

void
collectNodiscard(const std::string &text, std::set<std::string> &out)
{
    const SourceViews views = makeViews(text);
    const std::string &code = views.code;
    for (size_t i = 0; i < code.size();) {
        if (!isIdentChar(code[i]) ||
            std::isdigit(static_cast<unsigned char>(code[i]))) {
            ++i;
            continue;
        }
        const std::string ident = identAt(code, i);
        const size_t identEnd = i + ident.size();
        i = identEnd;
        if (ident != "Status" && ident != "Expected")
            continue;
        size_t k = skipWs(code, identEnd);
        if (ident == "Expected") {
            // Skip the <...> template argument list.
            if (k >= code.size() || code[k] != '<')
                continue;
            int depth = 0;
            for (; k < code.size(); ++k) {
                if (code[k] == '<')
                    ++depth;
                else if (code[k] == '>' && --depth == 0) {
                    ++k;
                    break;
                }
            }
            k = skipWs(code, k);
        }
        // Reference/pointer return decorations.
        while (k < code.size() && (code[k] == '&' || code[k] == '*'))
            k = skipWs(code, k + 1);
        const std::string name = identAt(code, k);
        if (name.empty() || name == "operator")
            continue;
        const size_t after = skipWs(code, k + name.size());
        if (after < code.size() && code[after] == '(')
            out.insert(name);
    }
}

std::vector<Finding>
lintText(const std::string &path, const std::string &text,
         const Config &config)
{
    const SourceViews views = makeViews(text);
    const std::vector<std::string> rawLines = splitLines(text);
    const std::vector<std::string> commentLines =
        splitLines(views.comments);

    std::vector<Finding> raw;
    scanDeterminism(views, rawLines, path, raw);
    scanFloatCompare(views, path, raw);
    scanNoDiscard(views, config.nodiscard, path, raw);
    scanHeaderRules(views, rawLines, path, raw);

    std::vector<Finding> bare;
    const Suppressions sup =
        scanSuppressions(commentLines, path, bare);

    std::vector<Finding> kept;
    for (Finding &finding : raw) {
        const auto it = sup.byLine.find(finding.line);
        if (it != sup.byLine.end() && it->second.count(finding.rule))
            continue;
        if (allowedByConfig(config, path, finding.rule))
            continue;
        kept.push_back(std::move(finding));
    }
    // bare-allow cannot be inline-suppressed (no infinite regress),
    // but a directory allowlist entry may cover it (fixture trees).
    for (Finding &finding : bare) {
        if (allowedByConfig(config, path, finding.rule))
            continue;
        kept.push_back(std::move(finding));
    }
    return kept;
}

void
parseAllowlist(const std::string &path, const std::string &text,
               Config &config, std::vector<Finding> &findings)
{
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const size_t start = skipWs(line, 0);
        if (start >= line.size() || line[start] == '#')
            continue;
        std::istringstream fields(line.substr(start));
        std::string rule, prefix;
        fields >> rule >> prefix;
        const size_t hash = line.find('#');
        const bool justified = hash != std::string::npos &&
            skipWs(line, hash + 1) < line.size();
        if (rule.empty() || prefix.empty() ||
            (rule != "*" && !isKnownRule(rule)) || !justified) {
            findings.push_back(
                {path, lineNo, "bare-allow",
                 "allowlist entry must be 'rule-id path-prefix  "
                 "# justification' with a known rule id"});
            continue;
        }
        config.allow.push_back({rule, normalizePath(prefix)});
    }
}

std::vector<Finding>
lintPaths(const std::vector<std::string> &roots, Config config,
          std::string *error)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (fs::recursive_directory_iterator
                     it(root, ec),
                 end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (it->is_regular_file() && lintableFile(it->path()))
                    files.push_back(it->path().string());
            }
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(root);
        } else {
            if (error)
                *error = "lhrlint: cannot read '" + root + "'";
            return {};
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: gather the Status/Expected API surface.
    std::vector<std::pair<std::string, std::string>> contents;
    contents.reserve(files.size());
    for (const std::string &file : files) {
        bool ok = false;
        std::string text = readFileOrEmpty(file, &ok);
        if (!ok) {
            if (error)
                *error = "lhrlint: cannot read '" + file + "'";
            return {};
        }
        collectNodiscard(text, config.nodiscard);
        contents.emplace_back(normalizePath(file), std::move(text));
    }

    // Pass 2: lint.
    std::vector<Finding> findings;
    for (const auto &[file, text] : contents) {
        std::vector<Finding> fs2 = lintText(file, text, config);
        findings.insert(findings.end(),
                        std::make_move_iterator(fs2.begin()),
                        std::make_move_iterator(fs2.end()));
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

int
runLhrlint(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err)
{
    std::vector<std::string> roots;
    std::string allowlistPath;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            err << "usage: lhrlint [--allowlist FILE] [--list-rules] "
                   "PATH...\n";
            return 0;
        }
        if (arg == "--list-rules") {
            for (const std::string &rule : allRuleIds())
                out << rule << "\n";
            return 0;
        }
        if (arg == "--allowlist") {
            if (i + 1 >= args.size()) {
                err << "lhrlint: --allowlist needs a file argument\n";
                return 2;
            }
            allowlistPath = args[++i];
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            err << "lhrlint: unknown option '" << arg << "'\n";
            return 2;
        }
        roots.push_back(arg);
    }
    if (roots.empty()) {
        err << "usage: lhrlint [--allowlist FILE] [--list-rules] "
               "PATH...\n";
        return 2;
    }

    Config config;
    std::vector<Finding> allowlistFindings;
    if (!allowlistPath.empty()) {
        bool ok = false;
        const std::string text = readFileOrEmpty(allowlistPath, &ok);
        if (!ok) {
            err << "lhrlint: cannot read allowlist '" << allowlistPath
                << "'\n";
            return 2;
        }
        parseAllowlist(normalizePath(allowlistPath), text, config,
                       allowlistFindings);
    }

    std::string error;
    std::vector<Finding> findings =
        lintPaths(roots, std::move(config), &error);
    if (!error.empty()) {
        err << error << "\n";
        return 2;
    }
    findings.insert(findings.end(), allowlistFindings.begin(),
                    allowlistFindings.end());

    for (const Finding &finding : findings)
        out << finding.toString() << "\n";
    err << "lhrlint: " << findings.size() << " finding"
        << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
}

} // namespace lhrlint
