/**
 * @file
 * lhrlint CLI entry point. All logic lives in lint.cc so the fixture
 * tests (tests/test_lint.cc) can drive the same code in-process.
 */

#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return lhrlint::runLhrlint(args, std::cout, std::cerr);
}
