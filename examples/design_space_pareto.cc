/**
 * @file
 * Example: extract the measured energy/performance Pareto frontier
 * of the 45nm design space for a chosen workload group — the paper's
 * section 4.2 analysis as a reusable tool.
 *
 * Usage: design_space_pareto [group]
 *   group: nn | ns | jn | js | avg (default avg)
 */

#include <iostream>
#include <optional>
#include <string>

#include "core/lab.hh"
#include "util/logging.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "avg";
    std::optional<lhr::Group> group;
    if (which == "nn")
        group = lhr::Group::NativeNonScalable;
    else if (which == "ns")
        group = lhr::Group::NativeScalable;
    else if (which == "jn")
        group = lhr::Group::JavaNonScalable;
    else if (which == "js")
        group = lhr::Group::JavaScalable;
    else if (which != "avg")
        lhr::fatal("unknown group '" + which +
                   "' (use nn|ns|jn|js|avg)");

    lhr::Lab lab;
    const auto points = lhr::paretoPoints45nm(
        lab.runner(), lab.reference(), group);
    const auto frontier = lhr::paretoFrontier(points);

    std::cout << "45nm energy/performance design space for "
              << (group ? lhr::groupName(*group) : "the average")
              << "\n(" << points.size() << " configurations, "
              << frontier.size() << " Pareto-efficient)\n\n";

    auto onFrontier = [&](const std::string &label) {
        for (const auto &member : frontier)
            if (member.label == label)
                return true;
        return false;
    };

    lhr::TableWriter table;
    table.addColumn("Configuration", lhr::TableWriter::Align::Left);
    table.addColumn("Perf/Ref");
    table.addColumn("Energy/Ref");
    table.addColumn("Pareto", lhr::TableWriter::Align::Left);
    for (const auto &pt : points) {
        table.beginRow();
        table.cell(pt.label);
        table.cell(pt.performance, 2);
        table.cell(pt.energy, 3);
        table.cell(onFrontier(pt.label) ? "*" : "");
    }
    table.print(std::cout);
    return 0;
}
