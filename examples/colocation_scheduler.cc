/**
 * @file
 * Example: energy-aware co-location scheduling built on the co-run
 * interference model. Given a batch of single-threaded jobs and a
 * two-core machine, pair them to minimize total completion slowdown
 * — the downstream use the paper's measurement infrastructure
 * enables ("measure power and performance to understand and
 * optimize", Conclusion).
 *
 * Compares the best pairing against the worst and against a naive
 * in-order pairing.
 */

#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/lab.hh"
#include "harness/corun.hh"
#include "util/table.hh"

namespace
{

struct Pairing
{
    std::vector<std::pair<int, int>> pairs;
    double totalSlowdown;
};

double
costOf(const std::vector<std::vector<double>> &penalty,
       const std::vector<std::pair<int, int>> &pairs)
{
    double cost = 0.0;
    for (const auto &[a, b] : pairs)
        cost += penalty[a][b] + penalty[b][a];
    return cost;
}

/** Exhaustive best/worst perfect matching over a small job set. */
void
search(const std::vector<std::vector<double>> &penalty,
       std::vector<int> &remaining,
       std::vector<std::pair<int, int>> &current, Pairing &best,
       Pairing &worst)
{
    if (remaining.empty()) {
        const double cost = costOf(penalty, current);
        if (best.pairs.empty() || cost < best.totalSlowdown)
            best = {current, cost};
        if (worst.pairs.empty() || cost > worst.totalSlowdown)
            worst = {current, cost};
        return;
    }
    const int first = remaining.front();
    for (size_t i = 1; i < remaining.size(); ++i) {
        std::vector<int> next;
        for (size_t j = 1; j < remaining.size(); ++j)
            if (j != i)
                next.push_back(remaining[j]);
        current.emplace_back(first, remaining[i]);
        search(penalty, next, current, best, worst);
        current.pop_back();
    }
}

} // namespace

int
main()
{
    lhr::Lab lab;
    lhr::CoRunner corunner(lab.runner());
    const auto cfg = lhr::stockConfig(lhr::processorById("C2D (65)"));

    const std::vector<const lhr::Benchmark *> jobs = {
        &lhr::benchmarkByName("hmmer"),
        &lhr::benchmarkByName("mcf"),
        &lhr::benchmarkByName("gcc"),
        &lhr::benchmarkByName("xalancbmk"),
        &lhr::benchmarkByName("povray"),
        &lhr::benchmarkByName("omnetpp"),
    };

    std::cout << "Pairing " << jobs.size()
              << " jobs onto the two cores of " << cfg.label()
              << "\n(cost = summed co-run slowdowns)\n\n";

    const auto penalty = corunner.matrix(cfg, jobs);

    std::vector<int> indices(jobs.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<std::pair<int, int>> current;
    Pairing best, worst;
    search(penalty, indices, current, best, worst);

    std::vector<std::pair<int, int>> naive;
    for (size_t i = 0; i + 1 < jobs.size(); i += 2)
        naive.emplace_back(i, i + 1);

    auto show = [&](const char *label,
                    const std::vector<std::pair<int, int>> &pairs) {
        std::cout << label << " (cost "
                  << lhr::formatFixed(costOf(penalty, pairs), 3)
                  << "):";
        for (const auto &[a, b] : pairs)
            std::cout << "  [" << jobs[a]->name << " + "
                      << jobs[b]->name << "]";
        std::cout << "\n";
    };

    show("Best pairing ", best.pairs);
    show("Naive pairing", naive);
    show("Worst pairing", worst.pairs);

    std::cout << "\nInterference penalty avoided by scheduling: "
              << lhr::formatFixed(
                     100.0 * (worst.totalSlowdown - best.totalSlowdown) /
                         worst.totalSlowdown,
                     1)
              << "% of the worst case.\nThe rule the matrix teaches: "
                 "never waste two interference-immune\njobs (hmmer, "
                 "povray) on each other — spread them against the\n"
                 "aggressors.\n";
    return 0;
}
