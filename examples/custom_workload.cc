/**
 * @file
 * Example: measure a user-defined workload. Downstream users are not
 * limited to the paper's 61 benchmarks — a Benchmark descriptor can
 * be written by hand (e.g. from performance-counter profiles of your
 * own application) and pushed through the same measurement pipeline.
 *
 * This models a hypothetical in-memory analytics engine: memory
 * heavy, moderately parallel, Java.
 */

#include <iostream>

#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    // Describe the workload. Field meanings are documented on
    // lhr::Benchmark; miss-curve parameters are what you would
    // measure with cachegrind or performance counters.
    lhr::Benchmark analytics{
        "my-analytics",
        lhr::Suite::DaCapo09,           // closest suite shape
        lhr::Group::JavaScalable,
        25.0,                           // reference time (s)
        "In-memory analytics engine (user-defined)",
        /* ilp */ 1.7,
        /* memAccessPerInstr */ 0.40,
        /* miss */ {30.0, 0.35, 300000.0, 3.0},
        /* branchMispKi */ 4.0,
        /* fpShare */ 0.10,
        /* appThreads */ 0,             // scales to all contexts
        /* parallelFraction */ 0.88,
        /* jvmServiceFraction */ 0.12,
        /* gcInterferenceRelief */ 0.06,
        /* phaseVariability */ 0.10,
    };

    lhr::Lab lab;
    std::cout << "Measuring '" << analytics.name
              << "' across the stock processors\n\n";

    const double i7Energy =
        lab.measure(lhr::stockConfig(lhr::processorById("i7 (45)")),
                    analytics).energyJ();

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("Time s");
    table.addColumn("Power W");
    table.addColumn("Energy J");
    table.addColumn("Energy vs i7");
    for (const auto &spec : lhr::allProcessors()) {
        const auto &m =
            lab.measure(lhr::stockConfig(spec), analytics);
        table.beginRow();
        table.cell(spec.id);
        table.cell(m.timeSec, 2);
        table.cell(m.powerW, 1);
        table.cell(m.energyJ(), 1);
        table.cell(m.energyJ() / i7Energy, 2);
    }
    table.print(std::cout);
    return 0;
}
