/**
 * @file
 * Example: sweep a processor's clock range and chart how
 * performance, power, and energy respond — the experiment behind the
 * paper's Finding 3 (the i5 is energy-flat across its clock range;
 * the i7 and C2D are not).
 *
 * Usage: clock_energy_sweep [processor-id] [steps]
 *   e.g. clock_energy_sweep "i5 (32)" 7
 */

#include <cstdlib>
#include <iostream>

#include "core/lab.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string id = argc > 1 ? argv[1] : "i7 (45)";
    const int steps = argc > 2 ? std::atoi(argv[2]) : 6;

    lhr::Lab lab;
    const auto sweep =
        lhr::clockSweep(lab.runner(), lab.reference(), id, steps);

    std::cout << "Clock sweep of " << id
              << " (all values relative to the lowest clock)\n\n";

    lhr::TableWriter table;
    table.addColumn("GHz");
    table.addColumn("Perf");
    table.addColumn("Energy");
    table.addColumn("Perf/GHz");
    for (const auto &pt : sweep) {
        table.beginRow();
        table.cell(pt.clockGhz, 2);
        table.cell(pt.perfRelBase, 3);
        table.cell(pt.energyRelBase, 3);
        table.cell(pt.perfRelBase /
                   (pt.clockGhz / sweep.front().clockGhz), 3);
    }
    table.print(std::cout);

    const auto &last = sweep.back();
    std::cout << "\nVerdict: running " << id
              << " at its top clock costs "
              << lhr::formatFixed(
                     100.0 * (last.energyRelBase - 1.0), 1)
              << "% energy versus its lowest clock.\n";
    return 0;
}
