/**
 * @file
 * Example: read the on-chip structure power meters while a workload
 * runs — the instrumentation the paper's conclusion asks hardware
 * vendors to expose ("power meters are necessary for optimizing
 * energy"). Shows the RAPL-style raw counter discipline: sample,
 * difference with wraparound, convert by the energy unit.
 *
 * Usage: onchip_meters [benchmark] [processor-id]
 */

#include <iostream>

#include "core/lab.hh"
#include "power/meters.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string benchName = argc > 1 ? argv[1] : "pjbb2005";
    const std::string procId = argc > 2 ? argv[2] : "i7 (45)";

    lhr::Lab lab;
    const auto cfg = lhr::stockConfig(lhr::processorById(procId));
    const auto &bench = lhr::benchmarkByName(benchName);

    double duration = 0.0;
    const auto meters = lab.runner().meterRun(cfg, bench, &duration);

    std::cout << "Structure meters for " << bench.name << " on "
              << cfg.label() << " (" << lhr::formatFixed(duration, 2)
              << " s, energy unit "
              << lhr::formatFixed(1e6 * meters.energyUnitJ(), 2)
              << " uJ/count)\n\n";

    lhr::TableWriter table;
    table.addColumn("Domain", lhr::TableWriter::Align::Left);
    table.addColumn("Raw counter");
    table.addColumn("Energy J");
    table.addColumn("Avg W");
    table.addColumn("Share %");

    const double pkgJ = meters.energyJ(lhr::MeterDomain::Package);
    for (const auto domain :
         {lhr::MeterDomain::Package, lhr::MeterDomain::Cores,
          lhr::MeterDomain::Llc, lhr::MeterDomain::Uncore}) {
        const double joules = meters.energyJ(domain);
        table.beginRow();
        table.cell(lhr::meterDomainName(domain));
        table.cell(static_cast<long>(meters.raw(domain)));
        table.cell(joules, 2);
        table.cell(joules / duration, 2);
        table.cell(100.0 * joules / pkgJ, 1);
    }
    table.print(std::cout);

    std::cout << "\nExternal Hall-sensor measurement for comparison: "
              << lhr::formatFixed(lab.measure(cfg, bench).powerW, 2)
              << " W\n";
    return 0;
}
