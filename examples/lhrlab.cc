/**
 * @file
 * lhrlab — command-line front end to the measurement laboratory.
 *
 * Subcommands:
 *   list [--names]                  list the registered studies
 *   run <study>... | run --all      run studies (one prewarm pass)
 *   processors                      list the eight processors
 *   benchmarks [group]              list benchmarks (nn|ns|jn|js)
 *   configs [--45nm]                list experimental configurations
 *   measure <proc-id> <bench> [opts]   measure one benchmark
 *   aggregate <proc-id> [opts]         Table 4-style row
 *   counters <proc-id> <bench>         event-counter profile
 *
 * Options for run:
 *   --format text|csv|json   --out DIR   --jobs N   --no-prewarm
 * Options for measure/aggregate:
 *   --cores N   --smt on|off   --clock GHZ   --turbo on|off
 * Global options (before the command):
 *   --seed N             experiment seed (also: LHR_SEED env)
 *   --sensor hall|rapl   force the measurement backend of every rig
 *                        (also: LHR_SENSOR env; default per era)
 *
 * Examples:
 *   lhrlab run fig04 --format=json
 *   lhrlab run --all --jobs 8 --format=json --out artifacts/
 *   lhrlab measure "i7 (45)" mcf --cores 2 --smt off --clock 1.6
 *
 * Sharded sweep with checkpoint/resume (see DESIGN.md):
 *   lhrlab snapshot s1.csv --shard 1/3 --checkpoint 50 --resume
 *   lhrlab snapshot s2.csv --shard 2/3 --checkpoint 50 --resume
 *   lhrlab snapshot s3.csv --shard 3/3 --checkpoint 50 --resume
 *   lhrlab merge grid.csv s1.csv s2.csv s3.csv
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "harness/corun.hh"
#include "harness/multiprog.hh"
#include "sensor/sensor.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "store/results_store.hh"
#include "study/study.hh"
#include "util/env.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

void
usage(std::ostream &os)
{
    os <<
        "usage: lhrlab [--seed N] [--sensor hall|rapl] <command> "
        "[args]\n"
        "  list [--names]\n"
        "  run <study>... | run --all  [--format text|csv|json]\n"
        "      [--out DIR] [--jobs N] [--no-prewarm]\n"
        "  processors\n"
        "  benchmarks [nn|ns|jn|js]\n"
        "  configs [--45nm]\n"
        "  measure <proc-id> <bench> [--cores N] [--smt on|off]\n"
        "          [--clock GHZ] [--turbo on|off]\n"
        "  aggregate <proc-id> [same options]\n"
        "  counters <proc-id> <bench>\n"
        "  rate <proc-id> <bench>\n"
        "  corun <proc-id> <bench-a> <bench-b>\n"
        "  snapshot <file.csv> [--45nm] [--shard I/N]\n"
        "           [--resume] [--checkpoint N]\n"
        "  merge <out.csv> <in.csv> [in.csv ...]\n"
        "  compare <before.csv> <after.csv> [tolerance]\n"
        "  serve --socket PATH [--workers N] [--queue N]\n"
        "        [--deadline MS]\n"
        "  loadgen --socket PATH [--clients N[,N...]]\n"
        "          [--requests N] [--keys N] [--deadline MS]\n"
        "          [--stall MS] [--reps N] [--json FILE]\n";
}

/**
 * A command line we cannot act on: report why, show the usage text
 * on stderr, exit nonzero. Silent-success on garbage (the old atoi
 * behaviour) is how a typo in a flag wastes an hour of sweeping.
 */
[[noreturn]] void
usageError(const std::string &message)
{
    std::cerr << "lhrlab: " << message << "\n";
    usage(std::cerr);
    std::exit(2);
}

/** Apply --cores/--smt/--clock/--turbo options to a config. */
const lhr::ProcessorSpec &
procArg(const std::string &id)
{
    const lhr::ProcessorSpec *found = lhr::findProcessor(id);
    if (!found)
        lhr::fatal("unknown processor '" + id +
                   "' (see: lhrlab processors)");
    return *found;
}

const lhr::Benchmark &
benchArg(const std::string &name)
{
    const lhr::Benchmark *found = lhr::findBenchmark(name);
    if (!found)
        lhr::fatal("unknown benchmark '" + name +
                   "' (see: lhrlab benchmarks)");
    return *found;
}

lhr::MachineConfig
applyOptions(lhr::MachineConfig cfg,
             const std::vector<std::string> &args, size_t first)
{
    for (size_t i = first; i < args.size(); i += 2) {
        if (i + 1 >= args.size())
            usageError("option " + args[i] + " needs a value");
        const std::string &opt = args[i];
        const std::string &value = args[i + 1];
        if (opt == "--cores") {
            const lhr::Expected<long> cores =
                lhr::parseInt(value, 1, cfg.spec->cores);
            if (!cores.ok())
                usageError("--cores must be 1.." +
                           std::to_string(cfg.spec->cores) + " for " +
                           cfg.spec->id + ": " +
                           cores.status().message());
            cfg = lhr::withCores(cfg, static_cast<int>(cores.value()));
        } else if (opt == "--smt") {
            if (value != "on" && value != "off")
                usageError("--smt takes on|off, got '" + value + "'");
            if (value == "on" && cfg.spec->smtWays < 2)
                lhr::fatal(cfg.spec->id + " has no SMT");
            cfg = lhr::withSmt(cfg, value == "on");
        } else if (opt == "--clock") {
            const lhr::Expected<double> clock = lhr::parseReal(value);
            if (!clock.ok())
                usageError("--clock: " + clock.status().message());
            if (clock.value() < cfg.spec->fMinGhz ||
                clock.value() > cfg.spec->stockClockGhz) {
                lhr::fatal("--clock must be within " +
                           lhr::formatFixed(cfg.spec->fMinGhz, 2) +
                           ".." +
                           lhr::formatFixed(cfg.spec->stockClockGhz, 2) +
                           " GHz for " + cfg.spec->id);
            }
            cfg = lhr::withClock(cfg, clock.value());
        } else if (opt == "--turbo") {
            if (value != "on" && value != "off")
                usageError("--turbo takes on|off, got '" + value + "'");
            if (value == "on" && !cfg.spec->hasTurbo)
                lhr::fatal(cfg.spec->id + " has no Turbo Boost");
            cfg = lhr::withTurbo(cfg, value == "on");
        } else {
            usageError("unknown option " + opt);
        }
    }
    return cfg;
}

int
cmdProcessors()
{
    lhr::TableWriter table;
    table.addColumn("Id", lhr::TableWriter::Align::Left);
    table.addColumn("Model", lhr::TableWriter::Align::Left);
    table.addColumn("uArch", lhr::TableWriter::Align::Left);
    table.addColumn("Era", lhr::TableWriter::Align::Left);
    table.addColumn("nm");
    table.addColumn("Config", lhr::TableWriter::Align::Left);
    table.addColumn("GHz");
    table.addColumn("TDP W");
    table.addColumn("Sensor", lhr::TableWriter::Align::Left);
    auto row = [&](const lhr::ProcessorSpec &spec) {
        table.beginRow();
        table.cell(spec.id);
        table.cell(spec.model);
        table.cell(lhr::familyName(spec.family));
        table.cell(lhr::eraName(spec.era));
        table.cell(static_cast<long>(spec.tech().featureNm));
        table.cell(lhr::msgOf(spec.cores, "C", spec.smtWays, "T"));
        table.cell(spec.stockClockGhz, 2);
        table.cell(spec.tdpW, 0);
        table.cell(
            lhr::sensorBackendName(lhr::defaultSensorBackend(spec)));
    };
    for (const auto &spec : lhr::allProcessors())
        row(spec);
    for (const auto &spec : lhr::postPaperProcessors())
        row(spec);
    table.print(std::cout);
    return 0;
}

int
cmdBenchmarks(const std::vector<std::string> &args)
{
    std::optional<lhr::Group> filter;
    if (args.size() > 2) {
        const std::string &which = args[2];
        if (which == "nn")
            filter = lhr::Group::NativeNonScalable;
        else if (which == "ns")
            filter = lhr::Group::NativeScalable;
        else if (which == "jn")
            filter = lhr::Group::JavaNonScalable;
        else if (which == "js")
            filter = lhr::Group::JavaScalable;
        else
            lhr::fatal("unknown group " + which);
    }
    lhr::TableWriter table;
    table.addColumn("Name", lhr::TableWriter::Align::Left);
    table.addColumn("Group", lhr::TableWriter::Align::Left);
    table.addColumn("Suite", lhr::TableWriter::Align::Left);
    table.addColumn("Ref s");
    for (const auto &bench : lhr::allBenchmarks()) {
        if (filter && bench.group != *filter)
            continue;
        table.beginRow();
        table.cell(bench.name);
        table.cell(lhr::groupName(bench.group));
        table.cell(lhr::suiteName(bench.suite));
        table.cell(bench.refTimeSec, 1);
    }
    table.print(std::cout);
    return 0;
}

int
cmdConfigs(const std::vector<std::string> &args)
{
    const bool only45 = args.size() > 2 && args[2] == "--45nm";
    const auto configs = only45 ? lhr::configurations45nm()
                                : lhr::standardConfigurations();
    for (const auto &cfg : configs)
        std::cout << cfg.label() << "\n";
    std::cout << "(" << configs.size() << " configurations)\n";
    return 0;
}

int
cmdMeasure(const std::vector<std::string> &args)
{
    if (args.size() < 4)
        lhr::fatal("measure needs <proc-id> <bench>");
    auto cfg =
        applyOptions(lhr::stockConfig(procArg(args[2])),
                     args, 4);
    const auto &bench = benchArg(args[3]);

    lhr::Lab lab;
    const auto &m = lab.measure(cfg, bench);
    const auto r = lab.result(cfg, bench);
    std::cout << bench.name << " on " << cfg.label() << ":\n"
              << "  time    " << lhr::formatFixed(m.timeSec, 3)
              << " s  (+-" << lhr::formatFixed(100 * m.timeCi95Rel, 2)
              << "%, " << m.invocations << " invocations)\n"
              << "  power   " << lhr::formatFixed(m.powerW, 2)
              << " W  (+-" << lhr::formatFixed(100 * m.powerCi95Rel, 2)
              << "%)\n"
              << "  energy  " << lhr::formatFixed(m.energyJ(), 1)
              << " J\n"
              << "  perf/ref    " << lhr::formatFixed(r.perf, 3) << "\n"
              << "  energy/ref  " << lhr::formatFixed(r.energy, 3)
              << "\n";
    return 0;
}

int
cmdAggregate(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        lhr::fatal("aggregate needs <proc-id>");
    auto cfg =
        applyOptions(lhr::stockConfig(procArg(args[2])),
                     args, 3);
    lhr::Lab lab;
    const auto agg = lab.aggregate(cfg);
    lhr::TableWriter table;
    table.addColumn("", lhr::TableWriter::Align::Left);
    table.addColumn("Perf/Ref");
    table.addColumn("Power W");
    table.addColumn("Energy/Ref");
    for (size_t gi = 0; gi < 4; ++gi) {
        table.beginRow();
        table.cell(lhr::groupName(lhr::allGroups()[gi]));
        table.cell(agg.byGroup[gi].perf, 2);
        table.cell(agg.byGroup[gi].powerW, 1);
        table.cell(agg.byGroup[gi].energy, 2);
    }
    table.beginRow();
    table.cell(std::string("Average (weighted)"));
    table.cell(agg.weighted.perf, 2);
    table.cell(agg.weighted.powerW, 1);
    table.cell(agg.weighted.energy, 2);
    std::cout << cfg.label() << ":\n";
    table.print(std::cout);
    return 0;
}

int
cmdCounters(const std::vector<std::string> &args)
{
    if (args.size() < 4)
        lhr::fatal("counters needs <proc-id> <bench>");
    const auto &spec = procArg(args[2]);
    const auto &bench = benchArg(args[3]);
    const auto profile =
        lhr::characterizeWorkload(bench, spec, 400000, 7);

    std::cout << "perf-stat-like profile of " << bench.name << " on "
              << spec.id << " (400k-instruction synthetic trace):\n";
    lhr::TableWriter table;
    table.addColumn("event", lhr::TableWriter::Align::Left);
    table.addColumn("count");
    table.addColumn("per Ki");
    for (const auto event :
         {lhr::HwEvent::Instructions, lhr::HwEvent::MemAccesses,
          lhr::HwEvent::L1dMisses, lhr::HwEvent::L2Misses,
          lhr::HwEvent::LlcMisses, lhr::HwEvent::BranchInstructions,
          lhr::HwEvent::BranchMispredicts, lhr::HwEvent::DtlbAccesses,
          lhr::HwEvent::DtlbMisses}) {
        table.beginRow();
        table.cell(lhr::hwEventName(event));
        table.cell(static_cast<long>(profile.counters.read(event)));
        table.cell(profile.counters.perKi(event), 2);
    }
    table.print(std::cout);
    return 0;
}

} // namespace

int
cmdRate(const std::vector<std::string> &args)
{
    if (args.size() < 4)
        lhr::fatal("rate needs <proc-id> <bench>");
    lhr::Lab lab;
    lhr::RateRunner rate(lab.runner());
    auto cfg = lhr::stockConfig(procArg(args[2]));
    if (cfg.spec->hasTurbo)
        cfg = lhr::withTurbo(cfg, false);
    const auto &bench = benchArg(args[3]);

    std::cout << "SPECrate-style sweep of " << bench.name << " on "
              << cfg.label() << ":\n";
    lhr::TableWriter table;
    table.addColumn("Copies");
    table.addColumn("Throughput");
    table.addColumn("Efficiency");
    table.addColumn("Power W");
    table.addColumn("J/copy");
    for (const auto &r : rate.sweep(cfg, bench)) {
        table.beginRow();
        table.cell(static_cast<long>(r.copies));
        table.cell(r.throughput, 2);
        table.cell(r.rateEfficiency, 2);
        table.cell(r.powerW, 1);
        table.cell(r.energyPerCopyJ, 0);
    }
    table.print(std::cout);
    return 0;
}

int
cmdCorun(const std::vector<std::string> &args)
{
    if (args.size() < 5)
        lhr::fatal("corun needs <proc-id> <bench-a> <bench-b>");
    lhr::Lab lab;
    lhr::CoRunner corunner(lab.runner());
    auto cfg = lhr::stockConfig(procArg(args[2]));
    if (cfg.spec->hasTurbo)
        cfg = lhr::withTurbo(cfg, false);
    if (cfg.smtPerCore > 1)
        cfg = lhr::withSmt(cfg, false);
    const auto r = corunner.run(cfg, benchArg(args[3]),
                                benchArg(args[4]));
    std::cout << args[3] << " + " << args[4] << " on " << cfg.label()
              << ":\n  slowdowns " << lhr::formatFixed(r.slowdownA, 3)
              << " / " << lhr::formatFixed(r.slowdownB, 3)
              << "\n  LLC share of " << args[3] << ": "
              << lhr::formatFixed(100.0 * r.llcShareA, 1)
              << "%\n  chip power "
              << lhr::formatFixed(r.powerW, 1) << " W\n";
    return 0;
}

namespace
{

/**
 * SIGINT/SIGTERM request a clean wind-down instead of killing the
 * process mid-write: snapshot flushes a final checkpoint, serve
 * drains its admitted work. The handler only sets flags (the only
 * async-signal-safe thing to do); the long-running loops poll them.
 */
std::atomic<bool> gStopRequested{false};
volatile std::sig_atomic_t gStopSignal = 0;

void
onStopSignal(int sig)
{
    gStopSignal = sig;
    gStopRequested.store(true);
}

void
installStopHandlers()
{
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
}

} // namespace

/** Parse the `--shard I/N` contract (1-based I, 1 <= I <= N). */
void
parseShardSpec(const std::string &value, lhr::SweepOptions &options)
{
    const size_t slash = value.find('/');
    if (slash == std::string::npos)
        usageError("--shard takes I/N (e.g. 1/3), got '" + value +
                   "'");
    const lhr::Expected<long> index =
        lhr::parseInt(value.substr(0, slash), 1, 1 << 20);
    const lhr::Expected<long> count =
        lhr::parseInt(value.substr(slash + 1), 1, 1 << 20);
    if (!index.ok() || !count.ok() ||
        index.value() > count.value()) {
        usageError("--shard takes I/N with 1 <= I <= N, got '" +
                   value + "'");
    }
    options.shardIndex = static_cast<int>(index.value()) - 1;
    options.shardCount = static_cast<int>(count.value());
}

int
cmdSnapshot(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        lhr::fatal("snapshot needs <file.csv>");
    const std::string &path = args[2];

    bool only45 = false;
    bool resume = false;
    lhr::SweepOptions options{.progress = true};
    for (size_t i = 3; i < args.size(); ++i) {
        const std::string &opt = args[i];
        if (opt == "--45nm") {
            only45 = true;
        } else if (opt == "--shard") {
            if (++i >= args.size())
                usageError("--shard needs a value (I/N)");
            parseShardSpec(args[i], options);
        } else if (opt == "--resume") {
            resume = true;
        } else if (opt == "--checkpoint") {
            if (++i >= args.size())
                usageError("--checkpoint needs a cell count");
            const lhr::Expected<long> every =
                lhr::parseInt(args[i], 1, 1L << 30);
            if (!every.ok())
                usageError("--checkpoint: " +
                           every.status().message());
            options.checkpointEvery =
                static_cast<size_t>(every.value());
            options.checkpointPath = path;
        } else {
            usageError("unknown snapshot option " + opt);
        }
    }

    // --resume warm-starts from the output file itself: the last
    // checkpoint (or completed run) of the same command. A missing
    // file is simply a cold start — the first attempt and a resumed
    // one use the identical command line.
    lhr::ResultStore prior;
    if (resume) {
        lhr::Expected<lhr::ResultStore> loaded =
            lhr::ResultStore::tryLoadFile(path);
        if (loaded.ok()) {
            prior = std::move(loaded).value();
            options.warmStart = &prior;
            std::cerr << "resuming from " << path << " ("
                      << prior.size() << " rows)\n";
        } else if (loaded.status().code() !=
                   lhr::StatusCode::IoError) {
            // A present-but-corrupt checkpoint is an error; silently
            // recomputing would mask it.
            lhr::fatal("snapshot --resume: " +
                       loaded.status().toString());
        }
    }

    // SIGINT/SIGTERM stop the sweep at the next cell boundary; the
    // rows completed by then are still flushed below, so a resumed
    // run restarts from the last completed cell rather than the
    // last --checkpoint interval.
    installStopHandlers();
    options.stopFlag = &gStopRequested;

    lhr::Lab lab;
    // Snapshot through the parallel sweep engine: bit-identical to
    // a serial sweep, but grid cells fan out across cores (thread
    // count via LHR_THREADS).
    const auto report =
        lab.sweep(only45 ? lhr::configurations45nm()
                         : lhr::standardConfigurations(),
                  lhr::allBenchmarks(), options);
    const bool interrupted = gStopRequested.load();
    auto store = lhr::toStore(report);
    if (interrupted && options.warmStart != nullptr) {
        // Cancelled cells carry no measurement, so fold the resumed
        // rows back in — the final checkpoint must never shrink
        // below the store it was resumed from.
        const lhr::Status merged = store.merge(prior);
        if (!merged.ok())
            lhr::fatal("snapshot: resumed rows conflict with "
                       "re-measured ones: " + merged.toString());
    }
    // Atomic temp-then-rename write: an interrupted snapshot never
    // clobbers the previous good file with a truncated one.
    const lhr::Status saved = store.saveToFile(path);
    if (!saved.ok())
        lhr::fatal("snapshot: " + saved.toString());
    if (interrupted) {
        std::cerr << "snapshot: interrupted by signal " << gStopSignal
                  << "; checkpointed " << store.size() << " rows to "
                  << path << " (rerun with --resume to continue)\n";
        return 128 + static_cast<int>(gStopSignal);
    }
    std::cout << "wrote " << store.size() << " measurements to "
              << path;
    if (options.shardCount > 1)
        std::cout << " (shard " << (options.shardIndex + 1) << "/"
                  << options.shardCount << ")";
    if (report.seededCells > 0)
        std::cout << " (" << report.seededCells
                  << " resumed, cache hits " << report.cache.hits
                  << ", misses " << report.cache.misses << ")";
    std::cout << "\n";
    return 0;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    if (args.size() < 4)
        lhr::fatal("merge needs <out.csv> and at least one <in.csv>");
    lhr::ResultStore merged;
    for (size_t i = 3; i < args.size(); ++i) {
        lhr::Expected<lhr::ResultStore> shard =
            lhr::ResultStore::tryLoadFile(args[i]);
        if (!shard.ok())
            lhr::fatal("merge: " + shard.status().toString());
        const lhr::Status ok = merged.merge(shard.value());
        if (!ok.ok())
            lhr::fatal("merge: " + args[i] + ": " + ok.toString());
    }
    const lhr::Status saved = merged.saveToFile(args[2]);
    if (!saved.ok())
        lhr::fatal("merge: " + saved.toString());
    std::cout << "merged " << (args.size() - 3) << " stores, "
              << merged.size() << " rows, into " << args[2] << "\n";
    return 0;
}

int
cmdCompare(const std::vector<std::string> &args)
{
    if (args.size() < 4)
        lhr::fatal("compare needs <before.csv> <after.csv>");
    double tolerance = 0.02;
    if (args.size() > 4) {
        const lhr::Expected<double> parsed = lhr::parseReal(args[4]);
        if (!parsed.ok() || parsed.value() < 0.0)
            usageError("tolerance must be a non-negative number, "
                       "got '" + args[4] + "'");
        tolerance = parsed.value();
    }
    auto loadOrDie = [](const std::string &path) {
        lhr::Expected<lhr::ResultStore> store =
            lhr::ResultStore::tryLoadFile(path);
        if (!store.ok())
            lhr::fatal("compare: " + store.status().toString());
        return std::move(store).value();
    };
    const auto before = loadOrDie(args[2]);
    const auto after = loadOrDie(args[3]);
    const auto cmp = lhr::compareStores(before, after, tolerance);

    std::cout << "compared " << cmp.compared << " rows at +-"
              << lhr::formatFixed(100.0 * tolerance, 1) << "%\n";
    if (cmp.clean()) {
        std::cout << "no regressions\n";
        return 0;
    }
    if (!cmp.regressions.empty()) {
        lhr::TableWriter table;
        table.addColumn("Configuration", lhr::TableWriter::Align::Left);
        table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
        table.addColumn("Time x");
        table.addColumn("Power x");
        table.addColumn("Energy x");
        for (const auto &delta : cmp.regressions) {
            table.beginRow();
            table.cell(delta.configLabel);
            table.cell(delta.benchmark);
            table.cell(delta.timeRatio, 3);
            table.cell(delta.powerRatio, 3);
            table.cell(delta.energyRatio, 3);
        }
        table.print(std::cout);
    }
    for (const auto &missing : cmp.onlyInBefore)
        std::cout << "only in before: " << missing << "\n";
    for (const auto &missing : cmp.onlyInAfter)
        std::cout << "only in after: " << missing << "\n";
    return 1;
}

int
cmdServe(const std::vector<std::string> &args)
{
    lhr::ServeOptions options;
    for (size_t i = 2; i < args.size(); i += 2) {
        if (i + 1 >= args.size())
            usageError("option " + args[i] + " needs a value");
        const std::string &opt = args[i];
        const std::string &value = args[i + 1];
        if (opt == "--socket") {
            options.socketPath = value;
        } else if (opt == "--workers") {
            const lhr::Expected<long> workers =
                lhr::parseInt(value, 1, 256);
            if (!workers.ok())
                usageError("--workers: " +
                           workers.status().message());
            options.workers = static_cast<int>(workers.value());
        } else if (opt == "--queue") {
            const lhr::Expected<long> depth =
                lhr::parseInt(value, 1, 1 << 20);
            if (!depth.ok())
                usageError("--queue: " + depth.status().message());
            options.queueDepth = static_cast<size_t>(depth.value());
        } else if (opt == "--deadline") {
            const lhr::Expected<double> deadline =
                lhr::parseReal(value);
            if (!deadline.ok() || deadline.value() < 0.0)
                usageError("--deadline takes milliseconds >= 0, "
                           "got '" + value + "'");
            options.defaultDeadlineMs = deadline.value();
        } else {
            usageError("unknown serve option " + opt);
        }
    }
    if (options.socketPath.empty())
        usageError("serve needs --socket PATH");

    // SIGINT/SIGTERM drain: stop accepting, flush admitted work,
    // then exit 0 — a supervisor restarting the daemon never sees
    // a truncated reply or lost admitted request.
    installStopHandlers();
    options.stopFlag = &gStopRequested;

    lhr::Lab lab;
    lhr::LabServer server(lab.runner(), options);
    const lhr::Status status = server.serve();
    if (!status.ok())
        lhr::fatal("serve: " + status.toString());
    const lhr::ServeStatsSnapshot stats = server.statsSnapshot();
    std::cout << "serve: drained; " << stats.served << " served, "
              << stats.degraded << " degraded, " << stats.overloaded
              << " overloaded, " << stats.deadlineShed << " shed, "
              << stats.coalesced << " coalesced, "
              << stats.refusedDraining << " refused while draining\n";
    return 0;
}

/** One `--clients` entry of a loadgen run, with its rep statistics. */
struct LoadgenSeries
{
    int clients = 0;
    std::vector<lhr::LoadgenReport> reps; ///< sorted by throughput
};

int
cmdLoadgen(const std::vector<std::string> &args)
{
    lhr::LoadgenOptions options;
    std::vector<int> clientCounts;
    int repsPerPoint = 1;
    std::string jsonPath;
    for (size_t i = 2; i < args.size(); i += 2) {
        if (i + 1 >= args.size())
            usageError("option " + args[i] + " needs a value");
        const std::string &opt = args[i];
        const std::string &value = args[i + 1];
        if (opt == "--socket") {
            options.socketPath = value;
        } else if (opt == "--clients") {
            std::stringstream list(value);
            std::string item;
            while (std::getline(list, item, ',')) {
                const lhr::Expected<long> n =
                    lhr::parseInt(item, 1, 4096);
                if (!n.ok())
                    usageError("--clients: " + n.status().message());
                clientCounts.push_back(static_cast<int>(n.value()));
            }
        } else if (opt == "--requests") {
            const lhr::Expected<long> n =
                lhr::parseInt(value, 1, 1L << 30);
            if (!n.ok())
                usageError("--requests: " + n.status().message());
            options.requestsPerClient = static_cast<int>(n.value());
        } else if (opt == "--keys") {
            const lhr::Expected<long> n = lhr::parseInt(value, 1, 32);
            if (!n.ok())
                usageError("--keys: " + n.status().message());
            options.keys = static_cast<int>(n.value());
        } else if (opt == "--deadline") {
            const lhr::Expected<double> ms = lhr::parseReal(value);
            if (!ms.ok() || ms.value() < 0.0)
                usageError("--deadline takes milliseconds >= 0, "
                           "got '" + value + "'");
            options.deadlineMs = ms.value();
        } else if (opt == "--stall") {
            const lhr::Expected<double> ms = lhr::parseReal(value);
            if (!ms.ok() || ms.value() < 0.0)
                usageError("--stall takes milliseconds >= 0, got '" +
                           value + "'");
            options.stallMs = ms.value();
        } else if (opt == "--reps") {
            const lhr::Expected<long> n = lhr::parseInt(value, 1, 64);
            if (!n.ok())
                usageError("--reps: " + n.status().message());
            repsPerPoint = static_cast<int>(n.value());
        } else if (opt == "--json") {
            jsonPath = value;
        } else {
            usageError("unknown loadgen option " + opt);
        }
    }
    if (options.socketPath.empty())
        usageError("loadgen needs --socket PATH");
    if (clientCounts.empty())
        clientCounts.push_back(options.clients);

    std::vector<LoadgenSeries> series;
    for (const int clients : clientCounts) {
        LoadgenSeries point;
        point.clients = clients;
        options.clients = clients;
        for (int rep = 0; rep < repsPerPoint; ++rep) {
            lhr::Expected<lhr::LoadgenReport> run =
                lhr::runLoadgen(options);
            if (!run.ok())
                lhr::fatal("loadgen: " + run.status().toString());
            point.reps.push_back(run.value());
        }
        std::sort(point.reps.begin(), point.reps.end(),
                  [](const lhr::LoadgenReport &a,
                     const lhr::LoadgenReport &b) {
                      return a.requestsPerSec < b.requestsPerSec;
                  });
        series.push_back(std::move(point));
    }

    lhr::TableWriter table;
    table.addColumn("Clients");
    table.addColumn("Req/s");
    table.addColumn("p50 ms");
    table.addColumn("p95 ms");
    table.addColumn("p99 ms");
    table.addColumn("ok");
    table.addColumn("degr");
    table.addColumn("over");
    table.addColumn("shed");
    table.addColumn("err");
    for (const LoadgenSeries &point : series) {
        // Median-throughput repetition: the gate compares medians,
        // so the human report shows the same numbers.
        const lhr::LoadgenReport &median =
            point.reps[point.reps.size() / 2];
        table.beginRow();
        table.cell(static_cast<long>(point.clients));
        table.cell(median.requestsPerSec, 1);
        table.cell(median.p50Ms, 2);
        table.cell(median.p95Ms, 2);
        table.cell(median.p99Ms, 2);
        table.cell(static_cast<long>(median.okCount));
        table.cell(static_cast<long>(median.degradedCount));
        table.cell(static_cast<long>(median.overloadedCount));
        table.cell(static_cast<long>(median.shedCount));
        table.cell(static_cast<long>(median.errorCount));
    }
    table.print(std::cout);

    if (jsonPath.empty())
        return 0;
    // One bench record per client count, in the BENCH_*.json shape
    // bench/bench_compare.cc gates: requests_per_sec is the median
    // over --reps, *_spread_rel keeps the gate noise-aware.
    std::ofstream jsonOut(jsonPath);
    if (!jsonOut)
        lhr::fatal("loadgen: cannot write " + jsonPath);
    lhr::JsonWriter json(jsonOut);
    json.beginArray();
    for (const LoadgenSeries &point : series) {
        const lhr::LoadgenReport &median =
            point.reps[point.reps.size() / 2];
        const double best = point.reps.back().requestsPerSec;
        const double worst = point.reps.front().requestsPerSec;
        const double spread =
            median.requestsPerSec > 0.0
                ? (best - worst) / median.requestsPerSec
                : 0.0;
        json.beginObject();
        json.key("name").value(lhr::msgOf("serve_c", point.clients));
        json.key("config").beginObject();
        json.key("clients").value(static_cast<long>(point.clients));
        json.key("requests_per_client")
            .value(static_cast<long>(options.requestsPerClient));
        json.key("keys").value(static_cast<long>(options.keys));
        json.key("reps").value(static_cast<long>(repsPerPoint));
        json.key("deadline_ms").value(options.deadlineMs, 3);
        json.key("stall_ms").value(options.stallMs, 3);
        json.endObject();
        json.key("metrics").beginObject();
        json.key("requests_per_sec").value(median.requestsPerSec, 1);
        json.key("requests_per_sec_best").value(best, 1);
        json.key("requests_per_sec_spread_rel").value(spread, 4);
        json.key("p50_ms").value(median.p50Ms, 3);
        json.key("p95_ms").value(median.p95Ms, 3);
        json.key("p99_ms").value(median.p99Ms, 3);
        json.key("ok").value(median.okCount);
        json.key("degraded").value(median.degradedCount);
        json.key("overloaded").value(median.overloadedCount);
        json.key("deadline_shed").value(median.shedCount);
        json.key("refused").value(median.refusedCount);
        json.key("errors").value(median.errorCount);
        json.endObject();
        json.key("wall_sec").value(median.wallSec, 6);
        json.endObject();
    }
    json.endArray();
    std::cout << "wrote " << series.size() << " records to "
              << jsonPath << "\n";
    return 0;
}

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);

    // Global options come before the command.
    size_t first = 1;
    while (first < args.size() &&
           (args[first] == "--seed" || args[first] == "--sensor")) {
        if (first + 1 >= args.size())
            usageError("option " + args[first] + " needs a value");
        if (args[first] == "--seed") {
            const auto seed = lhr::parseSeed(args[first + 1]);
            if (!seed)
                usageError("malformed --seed '" + args[first + 1] +
                           "'");
            lhr::setSeedOverride(seed);
        } else {
            const auto backend =
                lhr::parseSensorBackend(args[first + 1]);
            if (!backend)
                usageError("--sensor takes hall|rapl, got '" +
                           args[first + 1] + "'");
            lhr::setSensorBackendOverride(backend);
        }
        args.erase(args.begin() + first, args.begin() + first + 2);
    }

    if (args.size() < 2) {
        usage(std::cerr);
        return 2;
    }
    const std::string &command = args[1];
    if (command == "help" || command == "--help" || command == "-h") {
        usage(std::cout);
        return 0;
    }
    if (command == "list") {
        lhr::listStudies(std::cout,
                         args.size() > 2 && args[2] == "--names");
        return 0;
    }
    if (command == "run") {
        return lhr::runStudyCommand(
            std::vector<std::string>(args.begin() + 2, args.end()));
    }
    if (command == "processors")
        return cmdProcessors();
    if (command == "benchmarks")
        return cmdBenchmarks(args);
    if (command == "configs")
        return cmdConfigs(args);
    if (command == "measure")
        return cmdMeasure(args);
    if (command == "aggregate")
        return cmdAggregate(args);
    if (command == "counters")
        return cmdCounters(args);
    if (command == "rate")
        return cmdRate(args);
    if (command == "corun")
        return cmdCorun(args);
    if (command == "snapshot")
        return cmdSnapshot(args);
    if (command == "merge")
        return cmdMerge(args);
    if (command == "compare")
        return cmdCompare(args);
    if (command == "serve")
        return cmdServe(args);
    if (command == "loadgen")
        return cmdLoadgen(args);
    usageError("unknown command '" + command + "'");
}
