/**
 * @file
 * Example: define your own processor and measure with it. The paper
 * could not isolate a processor rail on its Pentium M board
 * (section 2.5) — here we define that machine and answer the
 * question the paper couldn't: where would the mobile design have
 * landed between the Pentium 4 and the Atom?
 *
 * Usage: custom_machine [definition-file]
 *   With no file, the built-in Pentium M definition is used.
 */

#include <fstream>
#include <iostream>

#include "core/lab.hh"
#include "machine/custom.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

const char *const builtinDefinition = R"(
# The machine the paper wished for: a Banias-class Pentium M.
id          = PentiumM (130)
model       = Pentium M 735 (Banias class)
family      = Core
node_nm     = 130
cores       = 1
smt         = 1
llc_mb      = 1
clock_ghz   = 1.7
fmin_ghz    = 0.6
transistors_m = 77
die_mm2     = 83
tdp_w       = 24.5
dram        = DDR-400
veff_min    = 0.96
veff_max    = 1.48
uncore_base_w = 2.0
)";

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<lhr::CustomProcessor> custom;
    if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file)
            lhr::fatal(std::string("cannot read ") + argv[1]);
        custom = lhr::CustomProcessor::parse(file);
    } else {
        custom = lhr::CustomProcessor::parseString(builtinDefinition);
    }
    const lhr::ProcessorSpec &spec = custom->spec();

    std::cout << "Measuring " << spec.model << " [" << spec.id
              << "] against the study's nearest neighbours\n\n";

    lhr::Lab lab;
    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
    table.addColumn("Time s");
    table.addColumn("Power W");
    table.addColumn("Energy J");

    const std::vector<const lhr::ProcessorSpec *> machines = {
        &lhr::processorById("Pentium4 (130)"),
        &spec,
        &lhr::processorById("Atom (45)"),
    };
    for (const char *name : {"gcc", "mcf", "hmmer"}) {
        const auto &bench = lhr::benchmarkByName(name);
        for (const auto *machine : machines) {
            const auto &m =
                lab.measure(lhr::stockConfig(*machine), bench);
            table.beginRow();
            table.cell(machine->id);
            table.cell(bench.name);
            table.cell(m.timeSec, 1);
            table.cell(m.powerW, 2);
            table.cell(m.energyJ(), 0);
        }
    }
    table.print(std::cout);

    std::cout <<
        "\nAt 1.7GHz the mobile design matches or beats the 2.4GHz\n"
        "Pentium 4 at well under half its power — the efficiency\n"
        "lineage that became the Core microarchitecture.\n";
    return 0;
}
