/**
 * @file
 * Quickstart: measure one benchmark on one processor and print the
 * measurement, then compare the stock processors on that benchmark.
 *
 * Usage: quickstart [benchmark-name]
 */

#include <iostream>

#include "core/lab.hh"
#include "util/logging.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string benchName = argc > 1 ? argv[1] : "mcf";
    const lhr::Benchmark *found = lhr::findBenchmark(benchName);
    if (!found) {
        lhr::fatal("unknown benchmark '" + benchName +
                   "' (try: mcf, lusearch, fluidanimate, ...)");
    }
    const lhr::Benchmark &bench = *found;

    lhr::Lab lab;

    std::cout << "Benchmark: " << bench.name << " ("
              << lhr::suiteName(bench.suite) << ", "
              << lhr::groupName(bench.group) << ")\n"
              << bench.description << "\n\n";

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("Time (s)");
    table.addColumn("+-%");
    table.addColumn("Power (W)");
    table.addColumn("+-%");
    table.addColumn("Energy (J)");
    table.addColumn("Perf/Ref");

    for (const auto &spec : lhr::allProcessors()) {
        const auto cfg = lhr::stockConfig(spec);
        const auto &m = lab.measure(cfg, bench);
        const auto r = lab.result(cfg, bench);
        table.beginRow();
        table.cell(spec.id);
        table.cell(m.timeSec, 2);
        table.cell(100.0 * m.timeCi95Rel, 2);
        table.cell(m.powerW, 2);
        table.cell(100.0 * m.powerCi95Rel, 2);
        table.cell(m.energyJ(), 1);
        table.cell(r.perf, 2);
    }
    table.print(std::cout);
    return 0;
}
