/**
 * @file
 * Example: calibrate a Hall-effect power measurement channel against
 * the reference current source and inspect the fit — the paper's
 * section 2.5 procedure (28 reference currents, linear fit,
 * R^2 >= 0.999).
 *
 * Usage: sensor_calibration [device-seed]
 */

#include <cstdlib>
#include <iostream>

#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "stats/summary.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 42;

    std::cout << "Calibrating an ACS714 +-5A channel (device seed "
              << seed << ")\n\n";

    const lhr::PowerChannel channel(lhr::SensorVariant::A5, seed);
    lhr::Rng rng(seed ^ 0xCA11B8);
    const auto cal = lhr::Calibration::calibrate(channel, rng);

    std::cout << "Fit: amps = "
              << lhr::formatFixed(cal.fit().slope, 6) << " * counts + "
              << lhr::formatFixed(cal.fit().intercept, 4)
              << "   (R^2 = " << lhr::formatFixed(cal.r2(), 6)
              << ", gate " << lhr::formatFixed(lhr::Calibration::r2Gate, 3)
              << ")\n\nResiduals across the current range:\n";

    lhr::TableWriter table;
    table.addColumn("True A");
    table.addColumn("Decoded A");
    table.addColumn("Error mA");
    table.addColumn("Error %");
    for (double amps = 0.4; amps <= 3.01; amps += 0.4) {
        lhr::Summary decoded;
        for (int i = 0; i < 256; ++i) {
            decoded.add(cal.ampsFromCounts(lhr::PowerChannel::quantize(
                channel.outputVolts(amps, rng))));
        }
        table.beginRow();
        table.cell(amps, 2);
        table.cell(decoded.mean(), 4);
        table.cell(1000.0 * (decoded.mean() - amps), 1);
        table.cell(100.0 * (decoded.mean() - amps) / amps, 2);
    }
    table.print(std::cout);

    std::cout <<
        "\nAt the 12V rail, 1 count ~= "
        << lhr::formatFixed(cal.fit().slope * 12.0, 3)
        << " W of quantization step.\n";
    return 0;
}
