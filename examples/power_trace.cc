/**
 * @file
 * Example: log a raw power trace the way the paper's AVR stick does
 * (§2.5) — 50Hz ADC samples over the benchmark's phase behaviour —
 * and summarize it. With --csv the raw trace is emitted for
 * plotting.
 *
 * Usage: power_trace [benchmark] [--csv]
 */

#include <cmath>
#include <cstring>
#include <iostream>

#include "core/lab.hh"
#include "util/logging.hh"
#include "sensor/trace_log.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string benchName = argc > 1 ? argv[1] : "gcc";
    const bool emitCsv = argc > 2 && std::strcmp(argv[2], "--csv") == 0;

    lhr::Lab lab;
    const auto &spec = lhr::processorById("i7 (45)");
    const auto cfg = lhr::stockConfig(spec);
    const lhr::Benchmark *found = lhr::findBenchmark(benchName);
    if (!found)
        lhr::fatal("unknown benchmark '" + benchName + "'");
    const lhr::Benchmark &bench = *found;

    // Sample the execution's true phase-power waveform through a
    // fresh calibrated channel, exactly as the harness does.
    double duration = 0.0;
    const auto meters = lab.runner().meterRun(cfg, bench, &duration);
    const double meanTrueW =
        meters.energyJ(lhr::MeterDomain::Package) / duration;
    const auto series = lab.runner().phasePowerSeries(cfg, bench);

    const lhr::PowerChannel channel(lhr::SensorVariant::A30, 99);
    lhr::Rng calRng(100);
    const auto cal = lhr::Calibration::calibrate(channel, calRng);
    lhr::PowerTraceLogger logger(channel, cal);

    lhr::Rng rng(101);
    const double logged = std::min(duration, 20.0);
    const int samples = std::max(
        32, static_cast<int>(logged * lhr::PowerChannel::sampleHz));
    for (int i = 0; i < samples; ++i) {
        const double t = i / lhr::PowerChannel::sampleHz;
        const size_t k = static_cast<size_t>(i) * series.size() / samples;
        logger.sample(t, series[k].total(), rng);
    }

    if (emitCsv) {
        logger.writeCsv(std::cout);
        return 0;
    }

    std::cout << "Power trace of " << bench.name << " on "
              << cfg.label() << " (" << logger.count()
              << " samples @ 50Hz)\n\n";
    lhr::TableWriter table;
    table.addColumn("Statistic", lhr::TableWriter::Align::Left);
    table.addColumn("Watts");
    auto row = [&](const char *name, double value) {
        table.beginRow();
        table.cell(std::string(name));
        table.cell(value, 2);
    };
    row("mean", logger.meanW());
    row("min", logger.minW());
    row("p5", logger.percentileW(5));
    row("median", logger.percentileW(50));
    row("p95", logger.percentileW(95));
    row("max", logger.maxW());
    row("metered true mean", meanTrueW);
    table.print(std::cout);
    std::cout << "\nRe-run with --csv for the raw trace.\n";
    return 0;
}
