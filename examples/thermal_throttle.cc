/**
 * @file
 * Example: Turbo Boost in the time domain. A sustained hot workload
 * on the i7 boosts while the package is cool, then sheds the boost
 * step as the junction approaches its limit — the dynamic behind the
 * paper's §3.6 observation that boost depends on "temperature,
 * power, and current conditions".
 *
 * Usage: thermal_throttle [power_watts] [seconds]
 */

#include <cstdlib>
#include <iostream>

#include "core/lab.hh"
#include "power/thermal_transient.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const double watts = argc > 1 ? std::atof(argv[1]) : 138.0;
    const double seconds = argc > 2 ? std::atof(argv[2]) : 120.0;

    const auto cfg =
        lhr::stockConfig(lhr::processorById("i7 (45)"));
    lhr::ThermalThrottle throttle(cfg, 2, 8.0);

    std::cout << "Sustained " << lhr::formatFixed(watts, 0)
              << " W single-core load on " << cfg.label()
              << " (throttle point "
              << lhr::formatFixed(lhr::ThermalModel::throttleJunctionC,
                                  0)
              << " C)\n\n";

    lhr::TableWriter table;
    table.addColumn("t (s)");
    table.addColumn("Junction C");
    table.addColumn("Boost steps");
    table.addColumn("Clock GHz");

    double clock = cfg.clockGhz;
    for (int t = 0; t <= static_cast<int>(seconds); ++t) {
        clock = throttle.step(
            [&](double f) {
                // Power tracks clock roughly linearly near the top.
                return watts * f / (cfg.clockGhz + 0.266);
            },
            1.0);
        if (t % 10 == 0) {
            table.beginRow();
            table.cell(static_cast<long>(t));
            table.cell(throttle.junctionC(), 1);
            table.cell(static_cast<long>(throttle.currentSteps()));
            table.cell(clock, 2);
        }
    }
    table.print(std::cout);

    std::cout <<
        "\nBoost survives the cold start and is withdrawn as the\n"
        "package saturates its thermal headroom; a cooler workload\n"
        "(try 60 W) keeps both steps indefinitely.\n";
    return 0;
}
