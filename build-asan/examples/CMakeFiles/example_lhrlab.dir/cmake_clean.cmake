file(REMOVE_RECURSE
  "CMakeFiles/example_lhrlab.dir/lhrlab.cc.o"
  "CMakeFiles/example_lhrlab.dir/lhrlab.cc.o.d"
  "lhrlab"
  "lhrlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lhrlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
