# Empty compiler generated dependencies file for example_lhrlab.
# This may be replaced when dependencies are built.
