file(REMOVE_RECURSE
  "CMakeFiles/example_colocation_scheduler.dir/colocation_scheduler.cc.o"
  "CMakeFiles/example_colocation_scheduler.dir/colocation_scheduler.cc.o.d"
  "colocation_scheduler"
  "colocation_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_colocation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
