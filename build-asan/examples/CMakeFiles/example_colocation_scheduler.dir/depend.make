# Empty dependencies file for example_colocation_scheduler.
# This may be replaced when dependencies are built.
