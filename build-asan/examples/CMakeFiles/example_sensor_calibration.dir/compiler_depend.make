# Empty compiler generated dependencies file for example_sensor_calibration.
# This may be replaced when dependencies are built.
