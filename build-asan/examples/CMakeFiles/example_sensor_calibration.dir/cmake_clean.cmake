file(REMOVE_RECURSE
  "CMakeFiles/example_sensor_calibration.dir/sensor_calibration.cc.o"
  "CMakeFiles/example_sensor_calibration.dir/sensor_calibration.cc.o.d"
  "sensor_calibration"
  "sensor_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensor_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
