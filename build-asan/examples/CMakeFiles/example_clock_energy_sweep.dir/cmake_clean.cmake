file(REMOVE_RECURSE
  "CMakeFiles/example_clock_energy_sweep.dir/clock_energy_sweep.cc.o"
  "CMakeFiles/example_clock_energy_sweep.dir/clock_energy_sweep.cc.o.d"
  "clock_energy_sweep"
  "clock_energy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_clock_energy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
