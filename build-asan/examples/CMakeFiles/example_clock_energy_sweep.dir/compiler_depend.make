# Empty compiler generated dependencies file for example_clock_energy_sweep.
# This may be replaced when dependencies are built.
