# Empty compiler generated dependencies file for example_custom_machine.
# This may be replaced when dependencies are built.
