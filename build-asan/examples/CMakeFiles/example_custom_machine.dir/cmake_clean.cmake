file(REMOVE_RECURSE
  "CMakeFiles/example_custom_machine.dir/custom_machine.cc.o"
  "CMakeFiles/example_custom_machine.dir/custom_machine.cc.o.d"
  "custom_machine"
  "custom_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
