file(REMOVE_RECURSE
  "CMakeFiles/example_design_space_pareto.dir/design_space_pareto.cc.o"
  "CMakeFiles/example_design_space_pareto.dir/design_space_pareto.cc.o.d"
  "design_space_pareto"
  "design_space_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_space_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
