# Empty dependencies file for example_thermal_throttle.
# This may be replaced when dependencies are built.
