file(REMOVE_RECURSE
  "CMakeFiles/example_thermal_throttle.dir/thermal_throttle.cc.o"
  "CMakeFiles/example_thermal_throttle.dir/thermal_throttle.cc.o.d"
  "thermal_throttle"
  "thermal_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_thermal_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
