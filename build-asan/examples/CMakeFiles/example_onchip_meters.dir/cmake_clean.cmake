file(REMOVE_RECURSE
  "CMakeFiles/example_onchip_meters.dir/onchip_meters.cc.o"
  "CMakeFiles/example_onchip_meters.dir/onchip_meters.cc.o.d"
  "onchip_meters"
  "onchip_meters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_onchip_meters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
