# Empty dependencies file for example_onchip_meters.
# This may be replaced when dependencies are built.
