file(REMOVE_RECURSE
  "CMakeFiles/example_power_trace.dir/power_trace.cc.o"
  "CMakeFiles/example_power_trace.dir/power_trace.cc.o.d"
  "power_trace"
  "power_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
