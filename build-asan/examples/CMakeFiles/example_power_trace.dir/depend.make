# Empty dependencies file for example_power_trace.
# This may be replaced when dependencies are built.
