# Empty compiler generated dependencies file for test_custom_machine.
# This may be replaced when dependencies are built.
