file(REMOVE_RECURSE
  "CMakeFiles/test_custom_machine.dir/test_custom_machine.cc.o"
  "CMakeFiles/test_custom_machine.dir/test_custom_machine.cc.o.d"
  "test_custom_machine"
  "test_custom_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
