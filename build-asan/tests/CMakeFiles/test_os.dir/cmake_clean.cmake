file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/test_os.cc.o"
  "CMakeFiles/test_os.dir/test_os.cc.o.d"
  "test_os"
  "test_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
