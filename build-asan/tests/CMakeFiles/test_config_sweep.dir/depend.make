# Empty dependencies file for test_config_sweep.
# This may be replaced when dependencies are built.
