file(REMOVE_RECURSE
  "CMakeFiles/test_config_sweep.dir/test_config_sweep.cc.o"
  "CMakeFiles/test_config_sweep.dir/test_config_sweep.cc.o.d"
  "test_config_sweep"
  "test_config_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
