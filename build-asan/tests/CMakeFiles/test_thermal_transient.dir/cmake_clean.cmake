file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_transient.dir/test_thermal_transient.cc.o"
  "CMakeFiles/test_thermal_transient.dir/test_thermal_transient.cc.o.d"
  "test_thermal_transient"
  "test_thermal_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
