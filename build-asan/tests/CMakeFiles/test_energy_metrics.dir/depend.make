# Empty dependencies file for test_energy_metrics.
# This may be replaced when dependencies are built.
