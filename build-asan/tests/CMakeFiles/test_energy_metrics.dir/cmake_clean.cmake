file(REMOVE_RECURSE
  "CMakeFiles/test_energy_metrics.dir/test_energy_metrics.cc.o"
  "CMakeFiles/test_energy_metrics.dir/test_energy_metrics.cc.o.d"
  "test_energy_metrics"
  "test_energy_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
