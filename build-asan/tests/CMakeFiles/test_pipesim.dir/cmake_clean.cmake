file(REMOVE_RECURSE
  "CMakeFiles/test_pipesim.dir/test_pipesim.cc.o"
  "CMakeFiles/test_pipesim.dir/test_pipesim.cc.o.d"
  "test_pipesim"
  "test_pipesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
