# Empty dependencies file for test_pipesim.
# This may be replaced when dependencies are built.
