file(REMOVE_RECURSE
  "CMakeFiles/test_findings.dir/test_findings.cc.o"
  "CMakeFiles/test_findings.dir/test_findings.cc.o.d"
  "test_findings"
  "test_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
