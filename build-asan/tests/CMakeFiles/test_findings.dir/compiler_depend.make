# Empty compiler generated dependencies file for test_findings.
# This may be replaced when dependencies are built.
