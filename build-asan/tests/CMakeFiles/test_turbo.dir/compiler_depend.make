# Empty compiler generated dependencies file for test_turbo.
# This may be replaced when dependencies are built.
