file(REMOVE_RECURSE
  "CMakeFiles/test_turbo.dir/test_turbo.cc.o"
  "CMakeFiles/test_turbo.dir/test_turbo.cc.o.d"
  "test_turbo"
  "test_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
