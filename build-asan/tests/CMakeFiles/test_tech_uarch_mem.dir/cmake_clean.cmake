file(REMOVE_RECURSE
  "CMakeFiles/test_tech_uarch_mem.dir/test_tech_uarch_mem.cc.o"
  "CMakeFiles/test_tech_uarch_mem.dir/test_tech_uarch_mem.cc.o.d"
  "test_tech_uarch_mem"
  "test_tech_uarch_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_uarch_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
