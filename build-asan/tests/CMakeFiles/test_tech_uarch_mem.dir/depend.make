# Empty dependencies file for test_tech_uarch_mem.
# This may be replaced when dependencies are built.
