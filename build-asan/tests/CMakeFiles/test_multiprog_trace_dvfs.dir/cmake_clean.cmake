file(REMOVE_RECURSE
  "CMakeFiles/test_multiprog_trace_dvfs.dir/test_multiprog_trace_dvfs.cc.o"
  "CMakeFiles/test_multiprog_trace_dvfs.dir/test_multiprog_trace_dvfs.cc.o.d"
  "test_multiprog_trace_dvfs"
  "test_multiprog_trace_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiprog_trace_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
