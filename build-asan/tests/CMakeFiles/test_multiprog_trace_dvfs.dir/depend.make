# Empty dependencies file for test_multiprog_trace_dvfs.
# This may be replaced when dependencies are built.
