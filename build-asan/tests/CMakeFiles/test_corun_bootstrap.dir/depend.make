# Empty dependencies file for test_corun_bootstrap.
# This may be replaced when dependencies are built.
