file(REMOVE_RECURSE
  "CMakeFiles/test_corun_bootstrap.dir/test_corun_bootstrap.cc.o"
  "CMakeFiles/test_corun_bootstrap.dir/test_corun_bootstrap.cc.o.d"
  "test_corun_bootstrap"
  "test_corun_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corun_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
