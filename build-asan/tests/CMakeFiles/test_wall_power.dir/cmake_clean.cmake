file(REMOVE_RECURSE
  "CMakeFiles/test_wall_power.dir/test_wall_power.cc.o"
  "CMakeFiles/test_wall_power.dir/test_wall_power.cc.o.d"
  "test_wall_power"
  "test_wall_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wall_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
