# Empty dependencies file for test_wall_power.
# This may be replaced when dependencies are built.
