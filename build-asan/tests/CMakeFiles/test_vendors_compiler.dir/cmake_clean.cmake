file(REMOVE_RECURSE
  "CMakeFiles/test_vendors_compiler.dir/test_vendors_compiler.cc.o"
  "CMakeFiles/test_vendors_compiler.dir/test_vendors_compiler.cc.o.d"
  "test_vendors_compiler"
  "test_vendors_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vendors_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
