file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim.dir/test_cachesim.cc.o"
  "CMakeFiles/test_cachesim.dir/test_cachesim.cc.o.d"
  "test_cachesim"
  "test_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
