file(REMOVE_RECURSE
  "CMakeFiles/test_trace_counters.dir/test_trace_counters.cc.o"
  "CMakeFiles/test_trace_counters.dir/test_trace_counters.cc.o.d"
  "test_trace_counters"
  "test_trace_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
