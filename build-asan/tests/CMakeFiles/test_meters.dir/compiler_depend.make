# Empty compiler generated dependencies file for test_meters.
# This may be replaced when dependencies are built.
