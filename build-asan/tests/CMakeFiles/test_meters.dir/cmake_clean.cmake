file(REMOVE_RECURSE
  "CMakeFiles/test_meters.dir/test_meters.cc.o"
  "CMakeFiles/test_meters.dir/test_meters.cc.o.d"
  "test_meters"
  "test_meters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
