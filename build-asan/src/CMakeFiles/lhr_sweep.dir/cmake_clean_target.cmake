file(REMOVE_RECURSE
  "liblhr_sweep.a"
)
