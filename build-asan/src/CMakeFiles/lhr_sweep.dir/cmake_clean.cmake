file(REMOVE_RECURSE
  "CMakeFiles/lhr_sweep.dir/sweep/sweep.cc.o"
  "CMakeFiles/lhr_sweep.dir/sweep/sweep.cc.o.d"
  "liblhr_sweep.a"
  "liblhr_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
