file(REMOVE_RECURSE
  "CMakeFiles/lhr_stats.dir/stats/bootstrap.cc.o"
  "CMakeFiles/lhr_stats.dir/stats/bootstrap.cc.o.d"
  "CMakeFiles/lhr_stats.dir/stats/linfit.cc.o"
  "CMakeFiles/lhr_stats.dir/stats/linfit.cc.o.d"
  "CMakeFiles/lhr_stats.dir/stats/pareto.cc.o"
  "CMakeFiles/lhr_stats.dir/stats/pareto.cc.o.d"
  "CMakeFiles/lhr_stats.dir/stats/summary.cc.o"
  "CMakeFiles/lhr_stats.dir/stats/summary.cc.o.d"
  "liblhr_stats.a"
  "liblhr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
