# Empty dependencies file for lhr_stats.
# This may be replaced when dependencies are built.
