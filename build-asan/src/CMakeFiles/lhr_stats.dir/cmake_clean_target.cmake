file(REMOVE_RECURSE
  "liblhr_stats.a"
)
