file(REMOVE_RECURSE
  "CMakeFiles/lhr_core.dir/core/lab.cc.o"
  "CMakeFiles/lhr_core.dir/core/lab.cc.o.d"
  "liblhr_core.a"
  "liblhr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
