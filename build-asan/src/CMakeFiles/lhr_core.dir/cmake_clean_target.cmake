file(REMOVE_RECURSE
  "liblhr_core.a"
)
