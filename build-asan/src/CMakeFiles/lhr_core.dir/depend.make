# Empty dependencies file for lhr_core.
# This may be replaced when dependencies are built.
