file(REMOVE_RECURSE
  "CMakeFiles/lhr_trace.dir/trace/generator.cc.o"
  "CMakeFiles/lhr_trace.dir/trace/generator.cc.o.d"
  "CMakeFiles/lhr_trace.dir/trace/lru_stack.cc.o"
  "CMakeFiles/lhr_trace.dir/trace/lru_stack.cc.o.d"
  "liblhr_trace.a"
  "liblhr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
