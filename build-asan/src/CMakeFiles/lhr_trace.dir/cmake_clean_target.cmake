file(REMOVE_RECURSE
  "liblhr_trace.a"
)
