file(REMOVE_RECURSE
  "CMakeFiles/lhr_machine.dir/machine/custom.cc.o"
  "CMakeFiles/lhr_machine.dir/machine/custom.cc.o.d"
  "CMakeFiles/lhr_machine.dir/machine/processor.cc.o"
  "CMakeFiles/lhr_machine.dir/machine/processor.cc.o.d"
  "liblhr_machine.a"
  "liblhr_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
