# Empty dependencies file for lhr_machine.
# This may be replaced when dependencies are built.
