file(REMOVE_RECURSE
  "liblhr_machine.a"
)
