file(REMOVE_RECURSE
  "liblhr_store.a"
)
