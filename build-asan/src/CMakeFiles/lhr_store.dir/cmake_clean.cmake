file(REMOVE_RECURSE
  "CMakeFiles/lhr_store.dir/store/results_store.cc.o"
  "CMakeFiles/lhr_store.dir/store/results_store.cc.o.d"
  "liblhr_store.a"
  "liblhr_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
