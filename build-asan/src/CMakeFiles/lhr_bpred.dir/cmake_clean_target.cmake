file(REMOVE_RECURSE
  "liblhr_bpred.a"
)
