file(REMOVE_RECURSE
  "CMakeFiles/lhr_bpred.dir/bpred/predictor.cc.o"
  "CMakeFiles/lhr_bpred.dir/bpred/predictor.cc.o.d"
  "liblhr_bpred.a"
  "liblhr_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
