file(REMOVE_RECURSE
  "CMakeFiles/lhr_jvm.dir/jvm/jvm_model.cc.o"
  "CMakeFiles/lhr_jvm.dir/jvm/jvm_model.cc.o.d"
  "CMakeFiles/lhr_jvm.dir/jvm/vendors.cc.o"
  "CMakeFiles/lhr_jvm.dir/jvm/vendors.cc.o.d"
  "liblhr_jvm.a"
  "liblhr_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
