file(REMOVE_RECURSE
  "liblhr_jvm.a"
)
