# Empty dependencies file for lhr_system.
# This may be replaced when dependencies are built.
