file(REMOVE_RECURSE
  "CMakeFiles/lhr_system.dir/system/wall_power.cc.o"
  "CMakeFiles/lhr_system.dir/system/wall_power.cc.o.d"
  "liblhr_system.a"
  "liblhr_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
