file(REMOVE_RECURSE
  "liblhr_system.a"
)
