file(REMOVE_RECURSE
  "liblhr_workload.a"
)
