file(REMOVE_RECURSE
  "CMakeFiles/lhr_workload.dir/workload/benchmark.cc.o"
  "CMakeFiles/lhr_workload.dir/workload/benchmark.cc.o.d"
  "CMakeFiles/lhr_workload.dir/workload/compiler.cc.o"
  "CMakeFiles/lhr_workload.dir/workload/compiler.cc.o.d"
  "CMakeFiles/lhr_workload.dir/workload/phases.cc.o"
  "CMakeFiles/lhr_workload.dir/workload/phases.cc.o.d"
  "liblhr_workload.a"
  "liblhr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
