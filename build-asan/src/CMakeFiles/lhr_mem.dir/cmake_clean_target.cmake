file(REMOVE_RECURSE
  "liblhr_mem.a"
)
