# Empty dependencies file for lhr_mem.
# This may be replaced when dependencies are built.
