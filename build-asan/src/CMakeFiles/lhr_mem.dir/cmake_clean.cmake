file(REMOVE_RECURSE
  "CMakeFiles/lhr_mem.dir/mem/dram.cc.o"
  "CMakeFiles/lhr_mem.dir/mem/dram.cc.o.d"
  "liblhr_mem.a"
  "liblhr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
