file(REMOVE_RECURSE
  "CMakeFiles/lhr_util.dir/util/csv.cc.o"
  "CMakeFiles/lhr_util.dir/util/csv.cc.o.d"
  "CMakeFiles/lhr_util.dir/util/hash.cc.o"
  "CMakeFiles/lhr_util.dir/util/hash.cc.o.d"
  "CMakeFiles/lhr_util.dir/util/logging.cc.o"
  "CMakeFiles/lhr_util.dir/util/logging.cc.o.d"
  "CMakeFiles/lhr_util.dir/util/rng.cc.o"
  "CMakeFiles/lhr_util.dir/util/rng.cc.o.d"
  "CMakeFiles/lhr_util.dir/util/table.cc.o"
  "CMakeFiles/lhr_util.dir/util/table.cc.o.d"
  "CMakeFiles/lhr_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/lhr_util.dir/util/thread_pool.cc.o.d"
  "liblhr_util.a"
  "liblhr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
