# Empty dependencies file for lhr_util.
# This may be replaced when dependencies are built.
