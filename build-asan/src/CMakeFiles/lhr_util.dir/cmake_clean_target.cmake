file(REMOVE_RECURSE
  "liblhr_util.a"
)
