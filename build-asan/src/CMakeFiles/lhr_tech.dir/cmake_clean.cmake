file(REMOVE_RECURSE
  "CMakeFiles/lhr_tech.dir/tech/node.cc.o"
  "CMakeFiles/lhr_tech.dir/tech/node.cc.o.d"
  "liblhr_tech.a"
  "liblhr_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
