file(REMOVE_RECURSE
  "liblhr_tech.a"
)
