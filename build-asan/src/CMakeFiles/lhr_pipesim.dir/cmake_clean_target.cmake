file(REMOVE_RECURSE
  "liblhr_pipesim.a"
)
