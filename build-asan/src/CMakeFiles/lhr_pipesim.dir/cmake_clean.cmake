file(REMOVE_RECURSE
  "CMakeFiles/lhr_pipesim.dir/pipesim/pipeline.cc.o"
  "CMakeFiles/lhr_pipesim.dir/pipesim/pipeline.cc.o.d"
  "liblhr_pipesim.a"
  "liblhr_pipesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_pipesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
