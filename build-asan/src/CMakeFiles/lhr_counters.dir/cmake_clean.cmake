file(REMOVE_RECURSE
  "CMakeFiles/lhr_counters.dir/counters/hwcounters.cc.o"
  "CMakeFiles/lhr_counters.dir/counters/hwcounters.cc.o.d"
  "liblhr_counters.a"
  "liblhr_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
