file(REMOVE_RECURSE
  "liblhr_counters.a"
)
