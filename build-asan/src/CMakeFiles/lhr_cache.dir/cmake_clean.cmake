file(REMOVE_RECURSE
  "CMakeFiles/lhr_cache.dir/cache/hierarchy.cc.o"
  "CMakeFiles/lhr_cache.dir/cache/hierarchy.cc.o.d"
  "liblhr_cache.a"
  "liblhr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
