file(REMOVE_RECURSE
  "liblhr_cache.a"
)
