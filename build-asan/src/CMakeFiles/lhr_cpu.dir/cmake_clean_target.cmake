file(REMOVE_RECURSE
  "liblhr_cpu.a"
)
