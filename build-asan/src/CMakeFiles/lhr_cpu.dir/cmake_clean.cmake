file(REMOVE_RECURSE
  "CMakeFiles/lhr_cpu.dir/cpu/perf_model.cc.o"
  "CMakeFiles/lhr_cpu.dir/cpu/perf_model.cc.o.d"
  "liblhr_cpu.a"
  "liblhr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
