file(REMOVE_RECURSE
  "liblhr_power.a"
)
