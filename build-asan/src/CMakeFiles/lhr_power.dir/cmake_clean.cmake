file(REMOVE_RECURSE
  "CMakeFiles/lhr_power.dir/power/chip_power.cc.o"
  "CMakeFiles/lhr_power.dir/power/chip_power.cc.o.d"
  "CMakeFiles/lhr_power.dir/power/meters.cc.o"
  "CMakeFiles/lhr_power.dir/power/meters.cc.o.d"
  "CMakeFiles/lhr_power.dir/power/thermal_transient.cc.o"
  "CMakeFiles/lhr_power.dir/power/thermal_transient.cc.o.d"
  "CMakeFiles/lhr_power.dir/power/turbo.cc.o"
  "CMakeFiles/lhr_power.dir/power/turbo.cc.o.d"
  "liblhr_power.a"
  "liblhr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
