file(REMOVE_RECURSE
  "liblhr_sensor.a"
)
