file(REMOVE_RECURSE
  "CMakeFiles/lhr_sensor.dir/sensor/calibration.cc.o"
  "CMakeFiles/lhr_sensor.dir/sensor/calibration.cc.o.d"
  "CMakeFiles/lhr_sensor.dir/sensor/channel.cc.o"
  "CMakeFiles/lhr_sensor.dir/sensor/channel.cc.o.d"
  "CMakeFiles/lhr_sensor.dir/sensor/trace_log.cc.o"
  "CMakeFiles/lhr_sensor.dir/sensor/trace_log.cc.o.d"
  "liblhr_sensor.a"
  "liblhr_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
