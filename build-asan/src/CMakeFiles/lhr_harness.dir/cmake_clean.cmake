file(REMOVE_RECURSE
  "CMakeFiles/lhr_harness.dir/harness/aggregate.cc.o"
  "CMakeFiles/lhr_harness.dir/harness/aggregate.cc.o.d"
  "CMakeFiles/lhr_harness.dir/harness/corun.cc.o"
  "CMakeFiles/lhr_harness.dir/harness/corun.cc.o.d"
  "CMakeFiles/lhr_harness.dir/harness/multiprog.cc.o"
  "CMakeFiles/lhr_harness.dir/harness/multiprog.cc.o.d"
  "CMakeFiles/lhr_harness.dir/harness/reference.cc.o"
  "CMakeFiles/lhr_harness.dir/harness/reference.cc.o.d"
  "CMakeFiles/lhr_harness.dir/harness/runner.cc.o"
  "CMakeFiles/lhr_harness.dir/harness/runner.cc.o.d"
  "liblhr_harness.a"
  "liblhr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
