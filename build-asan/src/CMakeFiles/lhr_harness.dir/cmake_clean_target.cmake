file(REMOVE_RECURSE
  "liblhr_harness.a"
)
