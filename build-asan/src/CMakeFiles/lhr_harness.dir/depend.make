# Empty dependencies file for lhr_harness.
# This may be replaced when dependencies are built.
