file(REMOVE_RECURSE
  "CMakeFiles/lhr_uarch.dir/uarch/descriptor.cc.o"
  "CMakeFiles/lhr_uarch.dir/uarch/descriptor.cc.o.d"
  "liblhr_uarch.a"
  "liblhr_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
