# Empty dependencies file for lhr_uarch.
# This may be replaced when dependencies are built.
