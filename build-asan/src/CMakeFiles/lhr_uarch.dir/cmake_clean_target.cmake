file(REMOVE_RECURSE
  "liblhr_uarch.a"
)
