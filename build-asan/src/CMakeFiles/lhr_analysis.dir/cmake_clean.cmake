file(REMOVE_RECURSE
  "CMakeFiles/lhr_analysis.dir/analysis/dvfs_study.cc.o"
  "CMakeFiles/lhr_analysis.dir/analysis/dvfs_study.cc.o.d"
  "CMakeFiles/lhr_analysis.dir/analysis/energy_metrics.cc.o"
  "CMakeFiles/lhr_analysis.dir/analysis/energy_metrics.cc.o.d"
  "CMakeFiles/lhr_analysis.dir/analysis/features.cc.o"
  "CMakeFiles/lhr_analysis.dir/analysis/features.cc.o.d"
  "CMakeFiles/lhr_analysis.dir/analysis/historical.cc.o"
  "CMakeFiles/lhr_analysis.dir/analysis/historical.cc.o.d"
  "CMakeFiles/lhr_analysis.dir/analysis/pareto_study.cc.o"
  "CMakeFiles/lhr_analysis.dir/analysis/pareto_study.cc.o.d"
  "CMakeFiles/lhr_analysis.dir/analysis/report.cc.o"
  "CMakeFiles/lhr_analysis.dir/analysis/report.cc.o.d"
  "liblhr_analysis.a"
  "liblhr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
