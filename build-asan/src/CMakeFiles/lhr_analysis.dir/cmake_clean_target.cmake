file(REMOVE_RECURSE
  "liblhr_analysis.a"
)
