# Empty dependencies file for lhr_analysis.
# This may be replaced when dependencies are built.
