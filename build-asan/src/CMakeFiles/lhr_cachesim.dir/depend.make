# Empty dependencies file for lhr_cachesim.
# This may be replaced when dependencies are built.
