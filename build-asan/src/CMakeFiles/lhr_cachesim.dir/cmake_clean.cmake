file(REMOVE_RECURSE
  "CMakeFiles/lhr_cachesim.dir/cachesim/cache_sim.cc.o"
  "CMakeFiles/lhr_cachesim.dir/cachesim/cache_sim.cc.o.d"
  "liblhr_cachesim.a"
  "liblhr_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
