file(REMOVE_RECURSE
  "liblhr_cachesim.a"
)
