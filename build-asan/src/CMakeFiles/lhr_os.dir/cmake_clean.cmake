file(REMOVE_RECURSE
  "CMakeFiles/lhr_os.dir/os/governor.cc.o"
  "CMakeFiles/lhr_os.dir/os/governor.cc.o.d"
  "liblhr_os.a"
  "liblhr_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhr_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
