# Empty dependencies file for lhr_os.
# This may be replaced when dependencies are built.
