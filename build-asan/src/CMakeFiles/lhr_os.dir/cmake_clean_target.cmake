file(REMOVE_RECURSE
  "liblhr_os.a"
)
