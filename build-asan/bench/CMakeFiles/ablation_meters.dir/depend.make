# Empty dependencies file for ablation_meters.
# This may be replaced when dependencies are built.
