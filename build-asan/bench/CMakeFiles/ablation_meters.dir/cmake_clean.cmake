file(REMOVE_RECURSE
  "CMakeFiles/ablation_meters.dir/ablation_meters.cc.o"
  "CMakeFiles/ablation_meters.dir/ablation_meters.cc.o.d"
  "ablation_meters"
  "ablation_meters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_meters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
