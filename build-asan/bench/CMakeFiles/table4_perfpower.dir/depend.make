# Empty dependencies file for table4_perfpower.
# This may be replaced when dependencies are built.
