file(REMOVE_RECURSE
  "CMakeFiles/table4_perfpower.dir/table4_perfpower.cc.o"
  "CMakeFiles/table4_perfpower.dir/table4_perfpower.cc.o.d"
  "table4_perfpower"
  "table4_perfpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_perfpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
