# Empty compiler generated dependencies file for ablation_corun.
# This may be replaced when dependencies are built.
