file(REMOVE_RECURSE
  "CMakeFiles/ablation_corun.dir/ablation_corun.cc.o"
  "CMakeFiles/ablation_corun.dir/ablation_corun.cc.o.d"
  "ablation_corun"
  "ablation_corun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_corun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
