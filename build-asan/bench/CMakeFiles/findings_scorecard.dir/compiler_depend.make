# Empty compiler generated dependencies file for findings_scorecard.
# This may be replaced when dependencies are built.
