file(REMOVE_RECURSE
  "CMakeFiles/findings_scorecard.dir/findings_scorecard.cc.o"
  "CMakeFiles/findings_scorecard.dir/findings_scorecard.cc.o.d"
  "findings_scorecard"
  "findings_scorecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/findings_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
