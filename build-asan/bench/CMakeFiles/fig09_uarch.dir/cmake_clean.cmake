file(REMOVE_RECURSE
  "CMakeFiles/fig09_uarch.dir/fig09_uarch.cc.o"
  "CMakeFiles/fig09_uarch.dir/fig09_uarch.cc.o.d"
  "fig09_uarch"
  "fig09_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
