# Empty dependencies file for fig09_uarch.
# This may be replaced when dependencies are built.
