# Empty compiler generated dependencies file for fig01_java_scalability.
# This may be replaced when dependencies are built.
