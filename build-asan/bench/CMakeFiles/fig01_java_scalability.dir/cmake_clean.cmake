file(REMOVE_RECURSE
  "CMakeFiles/fig01_java_scalability.dir/fig01_java_scalability.cc.o"
  "CMakeFiles/fig01_java_scalability.dir/fig01_java_scalability.cc.o.d"
  "fig01_java_scalability"
  "fig01_java_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_java_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
