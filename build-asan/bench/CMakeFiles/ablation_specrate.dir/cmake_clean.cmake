file(REMOVE_RECURSE
  "CMakeFiles/ablation_specrate.dir/ablation_specrate.cc.o"
  "CMakeFiles/ablation_specrate.dir/ablation_specrate.cc.o.d"
  "ablation_specrate"
  "ablation_specrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_specrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
