# Empty compiler generated dependencies file for ablation_specrate.
# This may be replaced when dependencies are built.
