# Empty dependencies file for ablation_wall_power.
# This may be replaced when dependencies are built.
