file(REMOVE_RECURSE
  "CMakeFiles/ablation_wall_power.dir/ablation_wall_power.cc.o"
  "CMakeFiles/ablation_wall_power.dir/ablation_wall_power.cc.o.d"
  "ablation_wall_power"
  "ablation_wall_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wall_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
