file(REMOVE_RECURSE
  "CMakeFiles/ablation_tracesim.dir/ablation_tracesim.cc.o"
  "CMakeFiles/ablation_tracesim.dir/ablation_tracesim.cc.o.d"
  "ablation_tracesim"
  "ablation_tracesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
