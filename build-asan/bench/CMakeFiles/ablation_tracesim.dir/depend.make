# Empty dependencies file for ablation_tracesim.
# This may be replaced when dependencies are built.
