file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipesim.dir/ablation_pipesim.cc.o"
  "CMakeFiles/ablation_pipesim.dir/ablation_pipesim.cc.o.d"
  "ablation_pipesim"
  "ablation_pipesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
