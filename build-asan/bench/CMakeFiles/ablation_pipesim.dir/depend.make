# Empty dependencies file for ablation_pipesim.
# This may be replaced when dependencies are built.
