file(REMOVE_RECURSE
  "CMakeFiles/fig11_historical.dir/fig11_historical.cc.o"
  "CMakeFiles/fig11_historical.dir/fig11_historical.cc.o.d"
  "fig11_historical"
  "fig11_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
