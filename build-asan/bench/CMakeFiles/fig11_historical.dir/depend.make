# Empty dependencies file for fig11_historical.
# This may be replaced when dependencies are built.
