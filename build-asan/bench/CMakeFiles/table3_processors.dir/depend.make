# Empty dependencies file for table3_processors.
# This may be replaced when dependencies are built.
