file(REMOVE_RECURSE
  "CMakeFiles/table3_processors.dir/table3_processors.cc.o"
  "CMakeFiles/table3_processors.dir/table3_processors.cc.o.d"
  "table3_processors"
  "table3_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
