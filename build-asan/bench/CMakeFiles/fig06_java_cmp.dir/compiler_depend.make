# Empty compiler generated dependencies file for fig06_java_cmp.
# This may be replaced when dependencies are built.
