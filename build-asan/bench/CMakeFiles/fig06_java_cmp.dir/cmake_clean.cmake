file(REMOVE_RECURSE
  "CMakeFiles/fig06_java_cmp.dir/fig06_java_cmp.cc.o"
  "CMakeFiles/fig06_java_cmp.dir/fig06_java_cmp.cc.o.d"
  "fig06_java_cmp"
  "fig06_java_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_java_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
