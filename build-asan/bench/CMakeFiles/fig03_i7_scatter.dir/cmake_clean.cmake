file(REMOVE_RECURSE
  "CMakeFiles/fig03_i7_scatter.dir/fig03_i7_scatter.cc.o"
  "CMakeFiles/fig03_i7_scatter.dir/fig03_i7_scatter.cc.o.d"
  "fig03_i7_scatter"
  "fig03_i7_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_i7_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
