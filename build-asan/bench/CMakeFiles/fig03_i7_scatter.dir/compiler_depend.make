# Empty compiler generated dependencies file for fig03_i7_scatter.
# This may be replaced when dependencies are built.
