# Empty dependencies file for sweep_throughput.
# This may be replaced when dependencies are built.
