file(REMOVE_RECURSE
  "CMakeFiles/sweep_throughput.dir/sweep_throughput.cc.o"
  "CMakeFiles/sweep_throughput.dir/sweep_throughput.cc.o.d"
  "sweep_throughput"
  "sweep_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
