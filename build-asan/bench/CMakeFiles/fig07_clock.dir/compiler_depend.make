# Empty compiler generated dependencies file for fig07_clock.
# This may be replaced when dependencies are built.
