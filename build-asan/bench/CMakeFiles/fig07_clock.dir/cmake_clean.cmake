file(REMOVE_RECURSE
  "CMakeFiles/fig07_clock.dir/fig07_clock.cc.o"
  "CMakeFiles/fig07_clock.dir/fig07_clock.cc.o.d"
  "fig07_clock"
  "fig07_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
