file(REMOVE_RECURSE
  "CMakeFiles/ablation_sensor_rate.dir/ablation_sensor_rate.cc.o"
  "CMakeFiles/ablation_sensor_rate.dir/ablation_sensor_rate.cc.o.d"
  "ablation_sensor_rate"
  "ablation_sensor_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensor_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
