# Empty dependencies file for ablation_sensor_rate.
# This may be replaced when dependencies are built.
