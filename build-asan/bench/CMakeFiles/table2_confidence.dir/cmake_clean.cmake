file(REMOVE_RECURSE
  "CMakeFiles/table2_confidence.dir/table2_confidence.cc.o"
  "CMakeFiles/table2_confidence.dir/table2_confidence.cc.o.d"
  "table2_confidence"
  "table2_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
