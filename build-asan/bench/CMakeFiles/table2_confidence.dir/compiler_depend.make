# Empty compiler generated dependencies file for table2_confidence.
# This may be replaced when dependencies are built.
