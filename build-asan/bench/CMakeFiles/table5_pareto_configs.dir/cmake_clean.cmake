file(REMOVE_RECURSE
  "CMakeFiles/table5_pareto_configs.dir/table5_pareto_configs.cc.o"
  "CMakeFiles/table5_pareto_configs.dir/table5_pareto_configs.cc.o.d"
  "table5_pareto_configs"
  "table5_pareto_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pareto_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
