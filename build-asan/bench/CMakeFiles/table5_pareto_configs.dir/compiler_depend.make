# Empty compiler generated dependencies file for table5_pareto_configs.
# This may be replaced when dependencies are built.
