file(REMOVE_RECURSE
  "CMakeFiles/ablation_metrics.dir/ablation_metrics.cc.o"
  "CMakeFiles/ablation_metrics.dir/ablation_metrics.cc.o.d"
  "ablation_metrics"
  "ablation_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
