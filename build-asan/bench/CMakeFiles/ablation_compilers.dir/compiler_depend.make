# Empty compiler generated dependencies file for ablation_compilers.
# This may be replaced when dependencies are built.
