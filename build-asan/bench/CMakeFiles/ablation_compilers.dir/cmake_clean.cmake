file(REMOVE_RECURSE
  "CMakeFiles/ablation_compilers.dir/ablation_compilers.cc.o"
  "CMakeFiles/ablation_compilers.dir/ablation_compilers.cc.o.d"
  "ablation_compilers"
  "ablation_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
