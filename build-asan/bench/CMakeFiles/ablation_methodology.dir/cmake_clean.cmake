file(REMOVE_RECURSE
  "CMakeFiles/ablation_methodology.dir/ablation_methodology.cc.o"
  "CMakeFiles/ablation_methodology.dir/ablation_methodology.cc.o.d"
  "ablation_methodology"
  "ablation_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
