# Empty compiler generated dependencies file for ablation_methodology.
# This may be replaced when dependencies are built.
