file(REMOVE_RECURSE
  "CMakeFiles/ablation_weighting.dir/ablation_weighting.cc.o"
  "CMakeFiles/ablation_weighting.dir/ablation_weighting.cc.o.d"
  "ablation_weighting"
  "ablation_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
