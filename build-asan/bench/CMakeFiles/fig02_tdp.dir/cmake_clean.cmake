file(REMOVE_RECURSE
  "CMakeFiles/fig02_tdp.dir/fig02_tdp.cc.o"
  "CMakeFiles/fig02_tdp.dir/fig02_tdp.cc.o.d"
  "fig02_tdp"
  "fig02_tdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
