# Empty dependencies file for fig02_tdp.
# This may be replaced when dependencies are built.
