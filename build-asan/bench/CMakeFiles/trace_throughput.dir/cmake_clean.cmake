file(REMOVE_RECURSE
  "CMakeFiles/trace_throughput.dir/trace_throughput.cc.o"
  "CMakeFiles/trace_throughput.dir/trace_throughput.cc.o.d"
  "trace_throughput"
  "trace_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
