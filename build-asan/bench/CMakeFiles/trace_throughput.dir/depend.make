# Empty dependencies file for trace_throughput.
# This may be replaced when dependencies are built.
