# Empty compiler generated dependencies file for ablation_dvfs_returns.
# This may be replaced when dependencies are built.
