file(REMOVE_RECURSE
  "CMakeFiles/ablation_dvfs_returns.dir/ablation_dvfs_returns.cc.o"
  "CMakeFiles/ablation_dvfs_returns.dir/ablation_dvfs_returns.cc.o.d"
  "ablation_dvfs_returns"
  "ablation_dvfs_returns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dvfs_returns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
