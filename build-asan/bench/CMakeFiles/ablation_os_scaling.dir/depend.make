# Empty dependencies file for ablation_os_scaling.
# This may be replaced when dependencies are built.
