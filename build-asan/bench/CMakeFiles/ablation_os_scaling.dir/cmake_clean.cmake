file(REMOVE_RECURSE
  "CMakeFiles/ablation_os_scaling.dir/ablation_os_scaling.cc.o"
  "CMakeFiles/ablation_os_scaling.dir/ablation_os_scaling.cc.o.d"
  "ablation_os_scaling"
  "ablation_os_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_os_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
