file(REMOVE_RECURSE
  "CMakeFiles/export_plots.dir/export_plots.cc.o"
  "CMakeFiles/export_plots.dir/export_plots.cc.o.d"
  "export_plots"
  "export_plots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_plots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
