# Empty dependencies file for export_plots.
# This may be replaced when dependencies are built.
