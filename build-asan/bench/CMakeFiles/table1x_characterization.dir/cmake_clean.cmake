file(REMOVE_RECURSE
  "CMakeFiles/table1x_characterization.dir/table1x_characterization.cc.o"
  "CMakeFiles/table1x_characterization.dir/table1x_characterization.cc.o.d"
  "table1x_characterization"
  "table1x_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1x_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
