# Empty compiler generated dependencies file for table1x_characterization.
# This may be replaced when dependencies are built.
