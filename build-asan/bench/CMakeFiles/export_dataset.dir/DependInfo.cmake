
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/export_dataset.cc" "bench/CMakeFiles/export_dataset.dir/export_dataset.cc.o" "gcc" "bench/CMakeFiles/export_dataset.dir/export_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/lhr_counters.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_pipesim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_cachesim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_bpred.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_os.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_system.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_sweep.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_store.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_analysis.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_harness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_power.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_sensor.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_stats.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_jvm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_machine.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_tech.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_uarch.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_cache.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
