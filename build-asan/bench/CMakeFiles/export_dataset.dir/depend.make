# Empty dependencies file for export_dataset.
# This may be replaced when dependencies are built.
