# Empty compiler generated dependencies file for fig12_pareto.
# This may be replaced when dependencies are built.
