file(REMOVE_RECURSE
  "CMakeFiles/fig12_pareto.dir/fig12_pareto.cc.o"
  "CMakeFiles/fig12_pareto.dir/fig12_pareto.cc.o.d"
  "fig12_pareto"
  "fig12_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
