file(REMOVE_RECURSE
  "CMakeFiles/fig04_cmp.dir/fig04_cmp.cc.o"
  "CMakeFiles/fig04_cmp.dir/fig04_cmp.cc.o.d"
  "fig04_cmp"
  "fig04_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
