# Empty dependencies file for fig04_cmp.
# This may be replaced when dependencies are built.
