# Empty dependencies file for ablation_jvm_vendors.
# This may be replaced when dependencies are built.
