file(REMOVE_RECURSE
  "CMakeFiles/ablation_jvm_vendors.dir/ablation_jvm_vendors.cc.o"
  "CMakeFiles/ablation_jvm_vendors.dir/ablation_jvm_vendors.cc.o.d"
  "ablation_jvm_vendors"
  "ablation_jvm_vendors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jvm_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
