# Empty compiler generated dependencies file for fig05_smt.
# This may be replaced when dependencies are built.
