file(REMOVE_RECURSE
  "CMakeFiles/fig05_smt.dir/fig05_smt.cc.o"
  "CMakeFiles/fig05_smt.dir/fig05_smt.cc.o.d"
  "fig05_smt"
  "fig05_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
