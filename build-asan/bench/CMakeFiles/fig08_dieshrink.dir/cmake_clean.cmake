file(REMOVE_RECURSE
  "CMakeFiles/fig08_dieshrink.dir/fig08_dieshrink.cc.o"
  "CMakeFiles/fig08_dieshrink.dir/fig08_dieshrink.cc.o.d"
  "fig08_dieshrink"
  "fig08_dieshrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dieshrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
