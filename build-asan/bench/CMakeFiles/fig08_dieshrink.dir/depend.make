# Empty dependencies file for fig08_dieshrink.
# This may be replaced when dependencies are built.
