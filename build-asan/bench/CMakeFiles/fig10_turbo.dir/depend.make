# Empty dependencies file for fig10_turbo.
# This may be replaced when dependencies are built.
