file(REMOVE_RECURSE
  "CMakeFiles/fig10_turbo.dir/fig10_turbo.cc.o"
  "CMakeFiles/fig10_turbo.dir/fig10_turbo.cc.o.d"
  "fig10_turbo"
  "fig10_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
